//! The application / platform / mapping model (§2 of the paper).

use std::fmt;

/// Index of a processor on the platform.
pub type ProcId = usize;
/// Index of a stage of the pipeline.
pub type StageId = usize;
/// Index of a precedence edge (a transferred file) of a workflow.
pub type EdgeId = usize;

/// The two communication models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommModel {
    /// **Overlap one-port**: a processor simultaneously receives, computes
    /// and sends (three independent sub-resources), each port serializing
    /// its own transfers.
    Overlap,
    /// **Strict one-port**: receive, compute and send are mutually
    /// exclusive on a processor.
    Strict,
}

impl fmt::Display for CommModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommModel::Overlap => write!(f, "overlap one-port"),
            CommModel::Strict => write!(f, "strict one-port"),
        }
    }
}

/// Validation errors for [`Pipeline`], [`Mapping`] and [`Instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A pipeline needs at least one stage.
    EmptyPipeline,
    /// `files.len()` must equal `work.len() − 1`.
    FileCountMismatch {
        /// number of stages
        stages: usize,
        /// number of inter-stage files provided
        files: usize,
    },
    /// Stage works and file sizes must be finite and non-negative.
    InvalidSize(f64),
    /// Every stage must be mapped onto at least one processor.
    UnmappedStage(StageId),
    /// A processor may execute at most one stage (and appear once in it).
    ProcessorReused(ProcId),
    /// A mapped processor does not exist on the platform.
    UnknownProcessor(ProcId),
    /// Processor speeds must be positive and finite.
    InvalidSpeed {
        /// the processor with the invalid speed
        proc: ProcId,
        /// the offending value
        speed: f64,
    },
    /// A bandwidth used by the mapping must be positive and finite.
    InvalidBandwidth {
        /// sending processor
        from: ProcId,
        /// receiving processor
        to: ProcId,
        /// the offending value
        bandwidth: f64,
    },
    /// Stage/mapping length mismatch.
    StageCountMismatch {
        /// stages in the pipeline
        pipeline: usize,
        /// stages in the mapping
        mapping: usize,
    },
    /// An edge must go from a lower to a higher stage id (stage ids are a
    /// topological order) and both endpoints must exist.
    InvalidEdge {
        /// source stage
        from: StageId,
        /// destination stage
        to: StageId,
    },
    /// Every stage except the source needs an in-edge and every stage
    /// except the sink needs an out-edge.
    DisconnectedStage(StageId),
    /// The precedence graph must reduce to the single source→sink edge
    /// under series-parallel reduction (merge parallel edges, contract
    /// degree-(1,1) internal stages).
    NotSeriesParallel,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyPipeline => write!(f, "pipeline has no stage"),
            ModelError::FileCountMismatch { stages, files } => {
                write!(f, "{stages} stages need {} files, got {files}", stages - 1)
            }
            ModelError::InvalidSize(v) => write!(f, "invalid stage/file size {v}"),
            ModelError::UnmappedStage(s) => write!(f, "stage {s} is mapped to no processor"),
            ModelError::ProcessorReused(p) => {
                write!(f, "processor {p} is assigned more than one stage slot")
            }
            ModelError::UnknownProcessor(p) => write!(f, "processor {p} not on the platform"),
            ModelError::InvalidSpeed { proc, speed } => {
                write!(f, "processor {proc} has invalid speed {speed}")
            }
            ModelError::InvalidBandwidth { from, to, bandwidth } => {
                write!(f, "link {from}->{to} has invalid bandwidth {bandwidth}")
            }
            ModelError::StageCountMismatch { pipeline, mapping } => {
                write!(f, "pipeline has {pipeline} stages but mapping covers {mapping}")
            }
            ModelError::InvalidEdge { from, to } => {
                write!(f, "invalid edge {from}->{to} (need from < to < num_stages)")
            }
            ModelError::DisconnectedStage(s) => {
                write!(f, "stage {s} is disconnected (missing an in- or out-edge)")
            }
            ModelError::NotSeriesParallel => {
                write!(f, "precedence graph is not two-terminal series-parallel")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A series-parallel streaming application: stage `S_k` costs `work[k]`
/// FLOP; precedence edge `e = (src, dst)` carries a file of `files[e]`
/// bytes from `S_src` to `S_dst`. Stage ids are required to be a
/// topological order (`src < dst` on every edge), stage `0` is the single
/// source and stage `n − 1` the single sink, and the precedence graph must
/// be two-terminal **series-parallel** ([`Workflow::from_edges`] validates
/// this by SP reduction).
///
/// The paper's linear chain is the special case built by
/// [`Workflow::new`]; [`Pipeline`] is a type alias for it, so every chain
/// call site and every SP-DAG call site share one code path.
#[derive(Debug, Clone, PartialEq)]
pub struct Workflow {
    work: Vec<f64>,
    /// `files[e]` is the size of the file carried by edge `e`.
    files: Vec<f64>,
    /// Edge endpoints `(src, dst)`, sorted by `(src, dst)`.
    edges: Vec<(u32, u32)>,
    /// Per-stage in-edge ids, ascending.
    ins: Vec<Vec<EdgeId>>,
    /// Per-stage out-edge ids, ascending.
    outs: Vec<Vec<EdgeId>>,
}

/// The linear special case of [`Workflow`] — what the paper calls a
/// replicated pipeline. A thin alias: no call site keeps a parallel
/// chain-only code path.
pub type Pipeline = Workflow;

impl Workflow {
    /// Builds a linear pipeline of `work.len()` stages with
    /// `work.len() − 1` inter-stage files (edge `k` goes `S_k → S_{k+1}`
    /// and carries `files[k]`).
    pub fn new(work: Vec<f64>, files: Vec<f64>) -> Result<Self, ModelError> {
        if work.is_empty() {
            return Err(ModelError::EmptyPipeline);
        }
        if files.len() != work.len() - 1 {
            return Err(ModelError::FileCountMismatch { stages: work.len(), files: files.len() });
        }
        for &v in work.iter().chain(files.iter()) {
            if !v.is_finite() || v < 0.0 {
                return Err(ModelError::InvalidSize(v));
            }
        }
        let edges = (0..work.len().saturating_sub(1))
            .map(|k| (k as u32, k as u32 + 1))
            .collect();
        Ok(Workflow::assemble(work, files, edges))
    }

    /// Builds a series-parallel workflow from explicit precedence edges
    /// `(src, dst, file_size)`. Edges are sorted by `(src, dst)` (ties
    /// keep input order); the sorted position is the edge's [`EdgeId`],
    /// which is also its index in [`Workflow::file_sizes`]. Validates the
    /// SP-DAG shape: topologically ordered ids, single source/sink,
    /// connected interior, series-parallel reducible.
    pub fn from_edges(
        work: Vec<f64>,
        edges: Vec<(StageId, StageId, f64)>,
    ) -> Result<Self, ModelError> {
        if work.is_empty() {
            return Err(ModelError::EmptyPipeline);
        }
        let n = work.len();
        for &v in work.iter() {
            if !v.is_finite() || v < 0.0 {
                return Err(ModelError::InvalidSize(v));
            }
        }
        let mut sorted = edges;
        sorted.sort_by_key(|&(s, d, _)| (s, d));
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(sorted.len());
        let mut files: Vec<f64> = Vec::with_capacity(sorted.len());
        for (s, d, size) in sorted {
            if s >= d || d >= n {
                return Err(ModelError::InvalidEdge { from: s, to: d });
            }
            if !size.is_finite() || size < 0.0 {
                return Err(ModelError::InvalidSize(size));
            }
            pairs.push((s as u32, d as u32));
            files.push(size);
        }
        // Interior connectivity. `src < dst` already makes stage 0 the
        // only possible source and stage n−1 the only possible sink.
        let mut in_deg = vec![0usize; n];
        let mut out_deg = vec![0usize; n];
        for &(s, d) in &pairs {
            out_deg[s as usize] += 1;
            in_deg[d as usize] += 1;
        }
        for (i, (&din, &dout)) in in_deg.iter().zip(out_deg.iter()).enumerate() {
            if (i > 0 && din == 0) || (i + 1 < n && dout == 0) {
                return Err(ModelError::DisconnectedStage(i));
            }
        }
        if !is_series_parallel(n, &pairs) {
            return Err(ModelError::NotSeriesParallel);
        }
        Ok(Workflow::assemble(work, files, pairs))
    }

    fn assemble(work: Vec<f64>, files: Vec<f64>, edges: Vec<(u32, u32)>) -> Self {
        let n = work.len();
        let mut ins = vec![Vec::new(); n];
        let mut outs = vec![Vec::new(); n];
        for (e, &(s, d)) in edges.iter().enumerate() {
            outs[s as usize].push(e);
            ins[d as usize].push(e);
        }
        Workflow { work, files, edges, ins, outs }
    }

    /// Number of stages `n`.
    pub fn num_stages(&self) -> usize {
        self.work.len()
    }

    /// Number of precedence edges `E` (chain: `n − 1`).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Work (FLOP) of stage `k`.
    pub fn work(&self, k: StageId) -> f64 {
        self.work[k]
    }

    /// Size (bytes) of the file carried by edge `e` (on a chain, edge `k`
    /// is the file `F_k` produced by stage `k`).
    pub fn file(&self, e: EdgeId) -> f64 {
        self.files[e]
    }

    /// Endpoints `(src, dst)` of edge `e`.
    pub fn edge(&self, e: EdgeId) -> (StageId, StageId) {
        let (s, d) = self.edges[e];
        (s as usize, d as usize)
    }

    /// All edge endpoints, sorted by `(src, dst)`.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Ids of the edges into stage `i`, ascending (chain: `[i − 1]`).
    pub fn in_edges(&self, i: StageId) -> &[EdgeId] {
        &self.ins[i]
    }

    /// Ids of the edges out of stage `i`, ascending (chain: `[i]`).
    pub fn out_edges(&self, i: StageId) -> &[EdgeId] {
        &self.outs[i]
    }

    /// True iff the workflow is the linear chain `S_0 → … → S_{n−1}`.
    pub fn is_linear(&self) -> bool {
        self.edges.len() == self.work.len() - 1
            && self
                .edges
                .iter()
                .enumerate()
                .all(|(e, &(s, d))| s as usize == e && d as usize == e + 1)
    }

    /// All stage works.
    pub fn works(&self) -> &[f64] {
        &self.work
    }

    /// All file sizes, indexed by [`EdgeId`].
    pub fn file_sizes(&self) -> &[f64] {
        &self.files
    }
}

/// Two-terminal series-parallel recognition by the classic reduction:
/// repeatedly merge parallel edges and contract internal stages with
/// in-degree 1 and out-degree 1; the graph is SP iff a single
/// source→sink edge remains.
fn is_series_parallel(n: usize, edges: &[(u32, u32)]) -> bool {
    if n == 1 {
        return edges.is_empty();
    }
    let mut multi: std::collections::BTreeMap<(u32, u32), usize> = std::collections::BTreeMap::new();
    for &e in edges {
        *multi.entry(e).or_insert(0) += 1;
    }
    loop {
        let mut changed = false;
        for count in multi.values_mut() {
            if *count > 1 {
                *count = 1;
                changed = true;
            }
        }
        let mut in_deg = vec![0usize; n];
        let mut out_deg = vec![0usize; n];
        for (&(s, d), &c) in &multi {
            out_deg[s as usize] += c;
            in_deg[d as usize] += c;
        }
        let contract = (1..n - 1).find(|&v| in_deg[v] == 1 && out_deg[v] == 1).map(|v| v as u32);
        if let Some(v) = contract {
            let (&(s, _), _) = multi.iter().find(|(&(_, d), _)| d == v).expect("in-edge");
            let (&(_, d), _) = multi.iter().find(|(&(s2, _), _)| s2 == v).expect("out-edge");
            multi.remove(&(s, v));
            multi.remove(&(v, d));
            *multi.entry((s, d)).or_insert(0) += 1;
            changed = true;
        }
        if !changed {
            break;
        }
    }
    multi.len() == 1 && multi.get(&(0, n as u32 - 1)) == Some(&1)
}

/// A fully heterogeneous platform: processor speeds and a full bandwidth
/// matrix (links may be logical, e.g. through a central switch).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    speeds: Vec<f64>,
    /// Row-major `p × p`; `bandwidth[u][v]` is the bandwidth of
    /// `link(u → v)`. Diagonal unused.
    bandwidth: Vec<f64>,
}

impl Platform {
    /// A platform with the given speeds and bandwidth matrix (row-major,
    /// `speeds.len()²` entries).
    pub fn new(speeds: Vec<f64>, bandwidth: Vec<f64>) -> Self {
        assert_eq!(bandwidth.len(), speeds.len() * speeds.len(), "bandwidth must be p×p");
        Platform { speeds, bandwidth }
    }

    /// A homogeneous platform: `p` processors of speed `speed`, all links of
    /// bandwidth `bw`.
    pub fn uniform(p: usize, speed: f64, bw: f64) -> Self {
        Platform { speeds: vec![speed; p], bandwidth: vec![bw; p * p] }
    }

    /// Number of processors `p`.
    pub fn num_procs(&self) -> usize {
        self.speeds.len()
    }

    /// Speed `Π_u`.
    pub fn speed(&self, u: ProcId) -> f64 {
        self.speeds[u]
    }

    /// Bandwidth `b_{u,v}`.
    pub fn bandwidth(&self, u: ProcId, v: ProcId) -> f64 {
        self.bandwidth[u * self.speeds.len() + v]
    }

    /// Sets one link's bandwidth.
    pub fn set_bandwidth(&mut self, u: ProcId, v: ProcId, bw: f64) {
        let p = self.speeds.len();
        self.bandwidth[u * p + v] = bw;
    }

    /// Sets one processor's speed.
    pub fn set_speed(&mut self, u: ProcId, speed: f64) {
        self.speeds[u] = speed;
    }
}

/// A mapping of stages to processors. `assignment[i]` lists the `m_i`
/// processors running stage `S_i`, **in round-robin order**: data set `j` of
/// stage `i` is processed by `assignment[i][j mod m_i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    assignment: Vec<Vec<ProcId>>,
}

impl Mapping {
    /// Builds a mapping; checks that every stage has at least one processor
    /// and no processor appears twice (a processor executes at most one
    /// stage — rule enforced by the paper).
    pub fn new(assignment: Vec<Vec<ProcId>>) -> Result<Self, ModelError> {
        let mut seen = std::collections::BTreeSet::new();
        for (i, procs) in assignment.iter().enumerate() {
            if procs.is_empty() {
                return Err(ModelError::UnmappedStage(i));
            }
            for &p in procs {
                if !seen.insert(p) {
                    return Err(ModelError::ProcessorReused(p));
                }
            }
        }
        Ok(Mapping { assignment })
    }

    /// One-to-one mapping: stage `i` on processor `procs[i]`.
    pub fn one_to_one(procs: Vec<ProcId>) -> Result<Self, ModelError> {
        Mapping::new(procs.into_iter().map(|p| vec![p]).collect())
    }

    /// Number of stages covered.
    pub fn num_stages(&self) -> usize {
        self.assignment.len()
    }

    /// Replication factor `m_i`.
    pub fn replicas(&self, i: StageId) -> usize {
        self.assignment[i].len()
    }

    /// The processors of stage `i`, in round-robin order.
    pub fn procs(&self, i: StageId) -> &[ProcId] {
        &self.assignment[i]
    }

    /// All replication factors `(m_0, …, m_{n−1})`.
    pub fn replica_counts(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.replica_counts_into(&mut out);
        out
    }

    /// Writes the replication factors into `out` (cleared first) — the
    /// allocation-free form of [`Mapping::replica_counts`] for callers
    /// that snapshot counts in a hot loop (the period engine's shape
    /// signature, the search loops' pass snapshots).
    pub fn replica_counts_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.assignment.iter().map(Vec::len));
    }

    /// True iff no stage is replicated (`m_i = 1` for all `i`).
    pub fn is_one_to_one(&self) -> bool {
        self.assignment.iter().all(|a| a.len() == 1)
    }

    /// The underlying assignment.
    pub fn assignment(&self) -> &[Vec<ProcId>] {
        &self.assignment
    }

    // --- in-place neighbor moves -------------------------------------
    //
    // The mapping searches (`repwf-map`) explore thousands of neighbor
    // mappings per second; rebuilding a `Mapping` (and re-running the
    // `Mapping::new` duplicate scan) per candidate dominated the cheap
    // moves. These mutators apply one move in place and are exactly
    // invertible, so a search applies a move, evaluates, and undoes it.
    // Each preserves the structural invariants (every stage non-empty, no
    // processor in two slots): violating a precondition panics — the
    // check is O(Σ m_i), negligible next to the period solve that follows
    // every move, and a silent invariant break would poison every
    // downstream consumer that trusts a `Mapping`.

    /// Appends `u` as the last replica of stage `i`. Panics if `u` already
    /// appears anywhere in the mapping. Inverse:
    /// [`Mapping::remove_replica`] at the last slot.
    pub fn push_replica(&mut self, i: StageId, u: ProcId) {
        assert!(
            self.assignment.iter().all(|procs| !procs.contains(&u)),
            "processor {u} is already mapped"
        );
        self.assignment[i].push(u);
    }

    /// Removes and returns the replica at `slot` of stage `i`, shifting
    /// later slots down. Panics if stage `i` has fewer than two replicas
    /// (a stage may never become empty). Inverse:
    /// [`Mapping::insert_replica`] at the same slot.
    pub fn remove_replica(&mut self, i: StageId, slot: usize) -> ProcId {
        assert!(self.assignment[i].len() > 1, "stage {i} must keep >= 1 replica");
        self.assignment[i].remove(slot)
    }

    /// Inserts `u` at `slot` of stage `i` (round-robin order matters, so
    /// undo must restore the exact slot, not append). Panics if `u`
    /// already appears anywhere in the mapping.
    pub fn insert_replica(&mut self, i: StageId, slot: usize, u: ProcId) {
        assert!(
            self.assignment.iter().all(|procs| !procs.contains(&u)),
            "processor {u} is already mapped"
        );
        self.assignment[i].insert(slot, u);
    }

    /// Swaps the processors of slot `si` of stage `i` and slot `sj` of
    /// stage `j`. Self-inverse; always preserves validity.
    pub fn swap_replicas(&mut self, i: StageId, si: usize, j: StageId, sj: usize) {
        let a = self.assignment[i][si];
        let b = self.assignment[j][sj];
        self.assignment[i][si] = b;
        self.assignment[j][sj] = a;
    }
}

/// A validated (pipeline, platform, mapping) triple — the input of every
/// throughput algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The application.
    pub pipeline: Pipeline,
    /// The platform.
    pub platform: Platform,
    /// The mapping.
    pub mapping: Mapping,
}

impl Instance {
    /// Bundles and cross-validates the three components: stage counts agree,
    /// mapped processors exist, speeds of used processors and bandwidths of
    /// used links are positive and finite.
    pub fn new(pipeline: Pipeline, platform: Platform, mapping: Mapping) -> Result<Self, ModelError> {
        InstanceView { pipeline: &pipeline, platform: &platform, mapping: &mapping }.validate()?;
        Ok(Instance { pipeline, platform, mapping })
    }

    /// The borrowed view of this instance — what the throughput algorithms
    /// actually consume. Free to construct; see [`InstanceView`].
    pub fn view(&self) -> InstanceView<'_> {
        InstanceView { pipeline: &self.pipeline, platform: &self.platform, mapping: &self.mapping }
    }

    /// Number of stages `n`.
    pub fn num_stages(&self) -> usize {
        self.pipeline.num_stages()
    }

    /// Computation time of stage `i` on processor `u`: `w_i / Π_u`.
    pub fn comp_time(&self, i: StageId, u: ProcId) -> f64 {
        self.view().comp_time(i, u)
    }

    /// Transfer time of the file carried by edge `e` over `link(u → v)`:
    /// `δ_e / b_{u,v}` (on a chain, edge `i` is the file `F_i`).
    pub fn comm_time(&self, e: EdgeId, u: ProcId, v: ProcId) -> f64 {
        self.view().comm_time(e, u, v)
    }

    /// The processor handling stage `i` of data set `j`
    /// (round-robin: `procs_i[j mod m_i]`).
    pub fn proc_for(&self, i: StageId, data_set: u64) -> ProcId {
        self.view().proc_for(i, data_set)
    }
}

/// A **borrowed** (pipeline, platform, mapping) triple — the zero-cost
/// sibling of [`Instance`].
///
/// Mapping searches evaluate thousands of candidate mappings against one
/// fixed pipeline/platform pair; building an owned [`Instance`] per
/// candidate means three deep clones per oracle call. A view borrows all
/// three components instead, offers the same accessors, and validates the
/// same invariants ([`InstanceView::validate`] is exactly the check behind
/// [`Instance::new`]). `repwf_core::engine::PeriodEngine::compute_view`
/// and the session-style `MappingOracle` consume views directly.
#[derive(Debug, Clone, Copy)]
pub struct InstanceView<'a> {
    /// The application.
    pub pipeline: &'a Pipeline,
    /// The platform.
    pub platform: &'a Platform,
    /// The mapping.
    pub mapping: &'a Mapping,
}

impl<'a> From<&'a Instance> for InstanceView<'a> {
    fn from(inst: &'a Instance) -> Self {
        inst.view()
    }
}

impl<'a> InstanceView<'a> {
    /// Bundles and validates a borrowed triple (same checks as
    /// [`Instance::new`], no clones).
    pub fn new(
        pipeline: &'a Pipeline,
        platform: &'a Platform,
        mapping: &'a Mapping,
    ) -> Result<Self, ModelError> {
        let view = InstanceView { pipeline, platform, mapping };
        view.validate()?;
        Ok(view)
    }

    /// Cross-validates the three components: stage counts agree, mapped
    /// processors exist, speeds of used processors and bandwidths of used
    /// links are positive and finite.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.pipeline.num_stages() != self.mapping.num_stages() {
            return Err(ModelError::StageCountMismatch {
                pipeline: self.pipeline.num_stages(),
                mapping: self.mapping.num_stages(),
            });
        }
        for i in 0..self.mapping.num_stages() {
            for &u in self.mapping.procs(i) {
                if u >= self.platform.num_procs() {
                    return Err(ModelError::UnknownProcessor(u));
                }
                let s = self.platform.speed(u);
                if !(s.is_finite() && s > 0.0) {
                    return Err(ModelError::InvalidSpeed { proc: u, speed: s });
                }
            }
        }
        // Every sender/receiver pair that the round-robin can produce on
        // some precedence edge must have a usable link.
        for e in 0..self.pipeline.num_edges() {
            let (src, dst) = self.pipeline.edge(e);
            for &u in self.mapping.procs(src) {
                for &v in self.mapping.procs(dst) {
                    let b = self.platform.bandwidth(u, v);
                    if !(b.is_finite() && b > 0.0) {
                        return Err(ModelError::InvalidBandwidth { from: u, to: v, bandwidth: b });
                    }
                }
            }
        }
        Ok(())
    }

    /// Deep-copies the view into an owned [`Instance`] (for the rare paths
    /// that need ownership, e.g. handing an instance to the simulator).
    pub fn to_instance(&self) -> Instance {
        Instance {
            pipeline: self.pipeline.clone(),
            platform: self.platform.clone(),
            mapping: self.mapping.clone(),
        }
    }

    /// Number of stages `n`.
    pub fn num_stages(&self) -> usize {
        self.pipeline.num_stages()
    }

    /// Computation time of stage `i` on processor `u`: `w_i / Π_u`.
    pub fn comp_time(&self, i: StageId, u: ProcId) -> f64 {
        self.pipeline.work(i) / self.platform.speed(u)
    }

    /// Transfer time of the file carried by edge `e` over `link(u → v)`:
    /// `δ_e / b_{u,v}` (on a chain, edge `i` is the file `F_i`).
    pub fn comm_time(&self, e: EdgeId, u: ProcId, v: ProcId) -> f64 {
        self.pipeline.file(e) / self.platform.bandwidth(u, v)
    }

    /// The processor handling stage `i` of data set `j`
    /// (round-robin: `procs_i[j mod m_i]`).
    pub fn proc_for(&self, i: StageId, data_set: u64) -> ProcId {
        let procs = self.mapping.procs(i);
        procs[(data_set % procs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Instance {
        let pipeline = Pipeline::new(vec![4.0, 6.0], vec![2.0]).unwrap();
        let platform = Platform::uniform(3, 2.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn pipeline_validation() {
        assert_eq!(Pipeline::new(vec![], vec![]), Err(ModelError::EmptyPipeline));
        assert!(matches!(
            Pipeline::new(vec![1.0, 2.0], vec![]),
            Err(ModelError::FileCountMismatch { .. })
        ));
        assert!(matches!(
            Pipeline::new(vec![1.0, f64::NAN], vec![1.0]),
            Err(ModelError::InvalidSize(_))
        ));
        assert!(Pipeline::new(vec![5.0], vec![]).is_ok());
    }

    #[test]
    fn chain_from_edges_matches_new() {
        let a = Pipeline::new(vec![3.0, 5.0, 7.0], vec![2.0, 4.0]).unwrap();
        let b = Workflow::from_edges(vec![3.0, 5.0, 7.0], vec![(0, 1, 2.0), (1, 2, 4.0)]).unwrap();
        assert_eq!(a, b);
        assert!(a.is_linear());
        assert_eq!(a.num_edges(), 2);
        assert_eq!(a.edge(0), (0, 1));
        assert_eq!(a.edge(1), (1, 2));
        assert_eq!(a.in_edges(0), &[] as &[EdgeId]);
        assert_eq!(a.in_edges(1), &[0]);
        assert_eq!(a.out_edges(1), &[1]);
        assert_eq!(a.out_edges(2), &[] as &[EdgeId]);
        assert_eq!(a.file_sizes(), &[2.0, 4.0]);
    }

    #[test]
    fn fork_join_diamond_is_valid() {
        let wf = Workflow::from_edges(
            vec![1.0, 2.0, 3.0, 4.0],
            // Deliberately unsorted input: edges get sorted by (src, dst).
            vec![(2, 3, 30.0), (0, 1, 10.0), (1, 3, 40.0), (0, 2, 20.0)],
        )
        .unwrap();
        assert!(!wf.is_linear());
        assert_eq!(wf.num_edges(), 4);
        assert_eq!(wf.edges(), &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(wf.file_sizes(), &[10.0, 20.0, 40.0, 30.0]);
        assert_eq!(wf.out_edges(0), &[0, 1]);
        assert_eq!(wf.in_edges(3), &[2, 3]);
        assert_eq!(wf.in_edges(1), &[0]);
        assert_eq!(wf.out_edges(2), &[3]);
    }

    #[test]
    fn parallel_edges_are_series_parallel() {
        let wf =
            Workflow::from_edges(vec![1.0, 1.0], vec![(0, 1, 3.0), (0, 1, 5.0)]).unwrap();
        assert_eq!(wf.num_edges(), 2);
        assert_eq!(wf.edges(), &[(0, 1), (0, 1)]);
    }

    #[test]
    fn non_sp_graph_rejected() {
        // The "W" graph (N-graph): 0→1, 0→2, 1→2, 1→3, 2→3 is a DAG with a
        // single source/sink but is not two-terminal series-parallel.
        assert_eq!(
            Workflow::from_edges(
                vec![1.0; 4],
                vec![(0, 1, 1.0), (0, 2, 1.0), (1, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
            ),
            Err(ModelError::NotSeriesParallel)
        );
    }

    #[test]
    fn from_edges_validation_errors() {
        assert_eq!(Workflow::from_edges(vec![], vec![]), Err(ModelError::EmptyPipeline));
        assert_eq!(
            Workflow::from_edges(vec![1.0, 1.0], vec![(1, 0, 1.0)]),
            Err(ModelError::InvalidEdge { from: 1, to: 0 })
        );
        assert_eq!(
            Workflow::from_edges(vec![1.0, 1.0], vec![(0, 2, 1.0)]),
            Err(ModelError::InvalidEdge { from: 0, to: 2 })
        );
        assert_eq!(
            Workflow::from_edges(vec![1.0, 1.0, 1.0], vec![(0, 2, 1.0)]),
            Err(ModelError::DisconnectedStage(1))
        );
        assert!(matches!(
            Workflow::from_edges(vec![1.0, 1.0], vec![(0, 1, f64::NAN)]),
            Err(ModelError::InvalidSize(_))
        ));
        // Single stage: no edges is the (trivially SP) empty workflow.
        assert!(Workflow::from_edges(vec![5.0], vec![]).is_ok());
    }

    #[test]
    fn fork_join_validate_checks_edge_links() {
        let wf = Workflow::from_edges(
            vec![1.0; 4],
            vec![(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
        )
        .unwrap();
        let mut platform = Platform::uniform(4, 1.0, 1.0);
        // Break the 0→2 branch link: used by edge (0, 2), not by any
        // chain-adjacent pair.
        platform.set_bandwidth(0, 2, 0.0);
        let mapping =
            Mapping::new(vec![vec![0], vec![1], vec![2], vec![3]]).unwrap();
        assert!(matches!(
            Instance::new(wf, platform, mapping),
            Err(ModelError::InvalidBandwidth { from: 0, to: 2, .. })
        ));
    }

    #[test]
    fn mapping_rejects_reuse() {
        assert_eq!(
            Mapping::new(vec![vec![0], vec![0, 1]]),
            Err(ModelError::ProcessorReused(0))
        );
        assert_eq!(Mapping::new(vec![vec![0], vec![]]), Err(ModelError::UnmappedStage(1)));
    }

    #[test]
    fn instance_cross_checks() {
        let pipeline = Pipeline::new(vec![1.0, 1.0], vec![1.0]).unwrap();
        let platform = Platform::uniform(2, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![5]]).unwrap();
        assert_eq!(
            Instance::new(pipeline.clone(), platform.clone(), mapping),
            Err(ModelError::UnknownProcessor(5))
        );
        let mapping3 = Mapping::new(vec![vec![0]]).unwrap();
        assert!(matches!(
            Instance::new(pipeline, platform, mapping3),
            Err(ModelError::StageCountMismatch { .. })
        ));
    }

    #[test]
    fn zero_bandwidth_on_used_link_rejected() {
        let pipeline = Pipeline::new(vec![1.0, 1.0], vec![1.0]).unwrap();
        let mut platform = Platform::uniform(2, 1.0, 1.0);
        platform.set_bandwidth(0, 1, 0.0);
        let mapping = Mapping::new(vec![vec![0], vec![1]]).unwrap();
        assert!(matches!(
            Instance::new(pipeline, platform, mapping),
            Err(ModelError::InvalidBandwidth { from: 0, to: 1, .. })
        ));
    }

    #[test]
    fn zero_bandwidth_on_unused_link_ok() {
        let pipeline = Pipeline::new(vec![1.0, 1.0], vec![1.0]).unwrap();
        let mut platform = Platform::uniform(3, 1.0, 1.0);
        platform.set_bandwidth(2, 0, 0.0); // proc 2 unused
        let mapping = Mapping::new(vec![vec![0], vec![1]]).unwrap();
        assert!(Instance::new(pipeline, platform, mapping).is_ok());
    }

    #[test]
    fn times() {
        let inst = small();
        assert_eq!(inst.comp_time(0, 0), 2.0); // 4 / 2
        assert_eq!(inst.comm_time(0, 0, 1), 2.0); // 2 / 1
    }

    #[test]
    fn round_robin_assignment() {
        let inst = small();
        assert_eq!(inst.proc_for(1, 0), 1);
        assert_eq!(inst.proc_for(1, 1), 2);
        assert_eq!(inst.proc_for(1, 2), 1);
    }

    #[test]
    fn view_validates_like_instance_new() {
        let pipeline = Pipeline::new(vec![1.0, 1.0], vec![1.0]).unwrap();
        let mut platform = Platform::uniform(3, 1.0, 1.0);
        platform.set_bandwidth(0, 1, 0.0);
        for assignment in [vec![vec![0], vec![1]], vec![vec![0], vec![9]], vec![vec![0], vec![2]]] {
            let mapping = Mapping::new(assignment).unwrap();
            let via_view = InstanceView::new(&pipeline, &platform, &mapping).map(|_| ());
            let via_instance =
                Instance::new(pipeline.clone(), platform.clone(), mapping).map(|_| ());
            assert_eq!(via_view, via_instance);
        }
    }

    #[test]
    fn view_accessors_match_instance() {
        let inst = small();
        let view = inst.view();
        assert_eq!(view.num_stages(), inst.num_stages());
        assert_eq!(view.comp_time(0, 0), inst.comp_time(0, 0));
        assert_eq!(view.comm_time(0, 0, 1), inst.comm_time(0, 0, 1));
        assert_eq!(view.proc_for(1, 2), inst.proc_for(1, 2));
        assert_eq!(view.to_instance(), inst);
    }

    #[test]
    fn in_place_moves_round_trip() {
        let mut m = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
        m.push_replica(0, 3);
        assert_eq!(m.procs(0), &[0, 3]);
        m.swap_replicas(0, 1, 1, 0);
        assert_eq!(m.procs(0), &[0, 1]);
        assert_eq!(m.procs(1), &[3, 2]);
        let u = m.remove_replica(1, 0);
        assert_eq!(u, 3);
        m.insert_replica(1, 0, u);
        assert_eq!(m.procs(1), &[3, 2]);
        // Invariants hold after every move (validated by reconstruction).
        assert!(Mapping::new(m.assignment().to_vec()).is_ok());
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn push_replica_rejects_duplicates() {
        let mut m = Mapping::new(vec![vec![0], vec![1]]).unwrap();
        m.push_replica(1, 0);
    }

    #[test]
    #[should_panic(expected = "must keep")]
    fn remove_replica_rejects_emptying_a_stage() {
        let mut m = Mapping::new(vec![vec![0], vec![1]]).unwrap();
        m.remove_replica(0, 0);
    }

    #[test]
    fn one_to_one_detection() {
        let inst = small();
        assert!(!inst.mapping.is_one_to_one());
        let m = Mapping::one_to_one(vec![3, 7]).unwrap();
        assert!(m.is_one_to_one());
        assert_eq!(m.replica_counts(), vec![1, 1]);
    }
}
