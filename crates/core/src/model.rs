//! The application / platform / mapping model (§2 of the paper).

use std::fmt;

/// Index of a processor on the platform.
pub type ProcId = usize;
/// Index of a stage of the pipeline.
pub type StageId = usize;

/// The two communication models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommModel {
    /// **Overlap one-port**: a processor simultaneously receives, computes
    /// and sends (three independent sub-resources), each port serializing
    /// its own transfers.
    Overlap,
    /// **Strict one-port**: receive, compute and send are mutually
    /// exclusive on a processor.
    Strict,
}

impl fmt::Display for CommModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommModel::Overlap => write!(f, "overlap one-port"),
            CommModel::Strict => write!(f, "strict one-port"),
        }
    }
}

/// Validation errors for [`Pipeline`], [`Mapping`] and [`Instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A pipeline needs at least one stage.
    EmptyPipeline,
    /// `files.len()` must equal `work.len() − 1`.
    FileCountMismatch {
        /// number of stages
        stages: usize,
        /// number of inter-stage files provided
        files: usize,
    },
    /// Stage works and file sizes must be finite and non-negative.
    InvalidSize(f64),
    /// Every stage must be mapped onto at least one processor.
    UnmappedStage(StageId),
    /// A processor may execute at most one stage (and appear once in it).
    ProcessorReused(ProcId),
    /// A mapped processor does not exist on the platform.
    UnknownProcessor(ProcId),
    /// Processor speeds must be positive and finite.
    InvalidSpeed {
        /// the processor with the invalid speed
        proc: ProcId,
        /// the offending value
        speed: f64,
    },
    /// A bandwidth used by the mapping must be positive and finite.
    InvalidBandwidth {
        /// sending processor
        from: ProcId,
        /// receiving processor
        to: ProcId,
        /// the offending value
        bandwidth: f64,
    },
    /// Stage/mapping length mismatch.
    StageCountMismatch {
        /// stages in the pipeline
        pipeline: usize,
        /// stages in the mapping
        mapping: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyPipeline => write!(f, "pipeline has no stage"),
            ModelError::FileCountMismatch { stages, files } => {
                write!(f, "{stages} stages need {} files, got {files}", stages - 1)
            }
            ModelError::InvalidSize(v) => write!(f, "invalid stage/file size {v}"),
            ModelError::UnmappedStage(s) => write!(f, "stage {s} is mapped to no processor"),
            ModelError::ProcessorReused(p) => {
                write!(f, "processor {p} is assigned more than one stage slot")
            }
            ModelError::UnknownProcessor(p) => write!(f, "processor {p} not on the platform"),
            ModelError::InvalidSpeed { proc, speed } => {
                write!(f, "processor {proc} has invalid speed {speed}")
            }
            ModelError::InvalidBandwidth { from, to, bandwidth } => {
                write!(f, "link {from}->{to} has invalid bandwidth {bandwidth}")
            }
            ModelError::StageCountMismatch { pipeline, mapping } => {
                write!(f, "pipeline has {pipeline} stages but mapping covers {mapping}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// A linear-chain streaming application: stage `S_k` costs `work[k]` FLOP
/// and sends a file of `files[k]` bytes to `S_{k+1}`.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    work: Vec<f64>,
    files: Vec<f64>,
}

impl Pipeline {
    /// Builds a pipeline of `work.len()` stages with `work.len() − 1`
    /// inter-stage files.
    pub fn new(work: Vec<f64>, files: Vec<f64>) -> Result<Self, ModelError> {
        if work.is_empty() {
            return Err(ModelError::EmptyPipeline);
        }
        if files.len() != work.len() - 1 {
            return Err(ModelError::FileCountMismatch { stages: work.len(), files: files.len() });
        }
        for &v in work.iter().chain(files.iter()) {
            if !v.is_finite() || v < 0.0 {
                return Err(ModelError::InvalidSize(v));
            }
        }
        Ok(Pipeline { work, files })
    }

    /// Number of stages `n`.
    pub fn num_stages(&self) -> usize {
        self.work.len()
    }

    /// Work (FLOP) of stage `k`.
    pub fn work(&self, k: StageId) -> f64 {
        self.work[k]
    }

    /// Size (bytes) of file `F_k` (produced by stage `k`, `k < n−1`).
    pub fn file(&self, k: usize) -> f64 {
        self.files[k]
    }

    /// All stage works.
    pub fn works(&self) -> &[f64] {
        &self.work
    }

    /// All file sizes.
    pub fn file_sizes(&self) -> &[f64] {
        &self.files
    }
}

/// A fully heterogeneous platform: processor speeds and a full bandwidth
/// matrix (links may be logical, e.g. through a central switch).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    speeds: Vec<f64>,
    /// Row-major `p × p`; `bandwidth[u][v]` is the bandwidth of
    /// `link(u → v)`. Diagonal unused.
    bandwidth: Vec<f64>,
}

impl Platform {
    /// A platform with the given speeds and bandwidth matrix (row-major,
    /// `speeds.len()²` entries).
    pub fn new(speeds: Vec<f64>, bandwidth: Vec<f64>) -> Self {
        assert_eq!(bandwidth.len(), speeds.len() * speeds.len(), "bandwidth must be p×p");
        Platform { speeds, bandwidth }
    }

    /// A homogeneous platform: `p` processors of speed `speed`, all links of
    /// bandwidth `bw`.
    pub fn uniform(p: usize, speed: f64, bw: f64) -> Self {
        Platform { speeds: vec![speed; p], bandwidth: vec![bw; p * p] }
    }

    /// Number of processors `p`.
    pub fn num_procs(&self) -> usize {
        self.speeds.len()
    }

    /// Speed `Π_u`.
    pub fn speed(&self, u: ProcId) -> f64 {
        self.speeds[u]
    }

    /// Bandwidth `b_{u,v}`.
    pub fn bandwidth(&self, u: ProcId, v: ProcId) -> f64 {
        self.bandwidth[u * self.speeds.len() + v]
    }

    /// Sets one link's bandwidth.
    pub fn set_bandwidth(&mut self, u: ProcId, v: ProcId, bw: f64) {
        let p = self.speeds.len();
        self.bandwidth[u * p + v] = bw;
    }

    /// Sets one processor's speed.
    pub fn set_speed(&mut self, u: ProcId, speed: f64) {
        self.speeds[u] = speed;
    }
}

/// A mapping of stages to processors. `assignment[i]` lists the `m_i`
/// processors running stage `S_i`, **in round-robin order**: data set `j` of
/// stage `i` is processed by `assignment[i][j mod m_i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mapping {
    assignment: Vec<Vec<ProcId>>,
}

impl Mapping {
    /// Builds a mapping; checks that every stage has at least one processor
    /// and no processor appears twice (a processor executes at most one
    /// stage — rule enforced by the paper).
    pub fn new(assignment: Vec<Vec<ProcId>>) -> Result<Self, ModelError> {
        let mut seen = std::collections::BTreeSet::new();
        for (i, procs) in assignment.iter().enumerate() {
            if procs.is_empty() {
                return Err(ModelError::UnmappedStage(i));
            }
            for &p in procs {
                if !seen.insert(p) {
                    return Err(ModelError::ProcessorReused(p));
                }
            }
        }
        Ok(Mapping { assignment })
    }

    /// One-to-one mapping: stage `i` on processor `procs[i]`.
    pub fn one_to_one(procs: Vec<ProcId>) -> Result<Self, ModelError> {
        Mapping::new(procs.into_iter().map(|p| vec![p]).collect())
    }

    /// Number of stages covered.
    pub fn num_stages(&self) -> usize {
        self.assignment.len()
    }

    /// Replication factor `m_i`.
    pub fn replicas(&self, i: StageId) -> usize {
        self.assignment[i].len()
    }

    /// The processors of stage `i`, in round-robin order.
    pub fn procs(&self, i: StageId) -> &[ProcId] {
        &self.assignment[i]
    }

    /// All replication factors `(m_0, …, m_{n−1})`.
    pub fn replica_counts(&self) -> Vec<usize> {
        self.assignment.iter().map(Vec::len).collect()
    }

    /// True iff no stage is replicated (`m_i = 1` for all `i`).
    pub fn is_one_to_one(&self) -> bool {
        self.assignment.iter().all(|a| a.len() == 1)
    }

    /// The underlying assignment.
    pub fn assignment(&self) -> &[Vec<ProcId>] {
        &self.assignment
    }
}

/// A validated (pipeline, platform, mapping) triple — the input of every
/// throughput algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The application.
    pub pipeline: Pipeline,
    /// The platform.
    pub platform: Platform,
    /// The mapping.
    pub mapping: Mapping,
}

impl Instance {
    /// Bundles and cross-validates the three components: stage counts agree,
    /// mapped processors exist, speeds of used processors and bandwidths of
    /// used links are positive and finite.
    pub fn new(pipeline: Pipeline, platform: Platform, mapping: Mapping) -> Result<Self, ModelError> {
        if pipeline.num_stages() != mapping.num_stages() {
            return Err(ModelError::StageCountMismatch {
                pipeline: pipeline.num_stages(),
                mapping: mapping.num_stages(),
            });
        }
        for i in 0..mapping.num_stages() {
            for &u in mapping.procs(i) {
                if u >= platform.num_procs() {
                    return Err(ModelError::UnknownProcessor(u));
                }
                let s = platform.speed(u);
                if !(s.is_finite() && s > 0.0) {
                    return Err(ModelError::InvalidSpeed { proc: u, speed: s });
                }
            }
        }
        // Every sender/receiver pair that the round-robin can produce must
        // have a usable link.
        for i in 0..mapping.num_stages().saturating_sub(1) {
            for &u in mapping.procs(i) {
                for &v in mapping.procs(i + 1) {
                    let b = platform.bandwidth(u, v);
                    if !(b.is_finite() && b > 0.0) {
                        return Err(ModelError::InvalidBandwidth { from: u, to: v, bandwidth: b });
                    }
                }
            }
        }
        Ok(Instance { pipeline, platform, mapping })
    }

    /// Number of stages `n`.
    pub fn num_stages(&self) -> usize {
        self.pipeline.num_stages()
    }

    /// Computation time of stage `i` on processor `u`: `w_i / Π_u`.
    pub fn comp_time(&self, i: StageId, u: ProcId) -> f64 {
        self.pipeline.work(i) / self.platform.speed(u)
    }

    /// Transfer time of file `F_i` over `link(u → v)`: `δ_i / b_{u,v}`.
    pub fn comm_time(&self, i: usize, u: ProcId, v: ProcId) -> f64 {
        self.pipeline.file(i) / self.platform.bandwidth(u, v)
    }

    /// The processor handling stage `i` of data set `j`
    /// (round-robin: `procs_i[j mod m_i]`).
    pub fn proc_for(&self, i: StageId, data_set: u64) -> ProcId {
        let procs = self.mapping.procs(i);
        procs[(data_set % procs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Instance {
        let pipeline = Pipeline::new(vec![4.0, 6.0], vec![2.0]).unwrap();
        let platform = Platform::uniform(3, 2.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn pipeline_validation() {
        assert_eq!(Pipeline::new(vec![], vec![]), Err(ModelError::EmptyPipeline));
        assert!(matches!(
            Pipeline::new(vec![1.0, 2.0], vec![]),
            Err(ModelError::FileCountMismatch { .. })
        ));
        assert!(matches!(
            Pipeline::new(vec![1.0, f64::NAN], vec![1.0]),
            Err(ModelError::InvalidSize(_))
        ));
        assert!(Pipeline::new(vec![5.0], vec![]).is_ok());
    }

    #[test]
    fn mapping_rejects_reuse() {
        assert_eq!(
            Mapping::new(vec![vec![0], vec![0, 1]]),
            Err(ModelError::ProcessorReused(0))
        );
        assert_eq!(Mapping::new(vec![vec![0], vec![]]), Err(ModelError::UnmappedStage(1)));
    }

    #[test]
    fn instance_cross_checks() {
        let pipeline = Pipeline::new(vec![1.0, 1.0], vec![1.0]).unwrap();
        let platform = Platform::uniform(2, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![5]]).unwrap();
        assert_eq!(
            Instance::new(pipeline.clone(), platform.clone(), mapping),
            Err(ModelError::UnknownProcessor(5))
        );
        let mapping3 = Mapping::new(vec![vec![0]]).unwrap();
        assert!(matches!(
            Instance::new(pipeline, platform, mapping3),
            Err(ModelError::StageCountMismatch { .. })
        ));
    }

    #[test]
    fn zero_bandwidth_on_used_link_rejected() {
        let pipeline = Pipeline::new(vec![1.0, 1.0], vec![1.0]).unwrap();
        let mut platform = Platform::uniform(2, 1.0, 1.0);
        platform.set_bandwidth(0, 1, 0.0);
        let mapping = Mapping::new(vec![vec![0], vec![1]]).unwrap();
        assert!(matches!(
            Instance::new(pipeline, platform, mapping),
            Err(ModelError::InvalidBandwidth { from: 0, to: 1, .. })
        ));
    }

    #[test]
    fn zero_bandwidth_on_unused_link_ok() {
        let pipeline = Pipeline::new(vec![1.0, 1.0], vec![1.0]).unwrap();
        let mut platform = Platform::uniform(3, 1.0, 1.0);
        platform.set_bandwidth(2, 0, 0.0); // proc 2 unused
        let mapping = Mapping::new(vec![vec![0], vec![1]]).unwrap();
        assert!(Instance::new(pipeline, platform, mapping).is_ok());
    }

    #[test]
    fn times() {
        let inst = small();
        assert_eq!(inst.comp_time(0, 0), 2.0); // 4 / 2
        assert_eq!(inst.comm_time(0, 0, 1), 2.0); // 2 / 1
    }

    #[test]
    fn round_robin_assignment() {
        let inst = small();
        assert_eq!(inst.proc_for(1, 0), 1);
        assert_eq!(inst.proc_for(1, 1), 2);
        assert_eq!(inst.proc_for(1, 2), 1);
    }

    #[test]
    fn one_to_one_detection() {
        let inst = small();
        assert!(!inst.mapping.is_one_to_one());
        let m = Mapping::one_to_one(vec![3, 7]).unwrap();
        assert!(m.is_one_to_one());
        assert_eq!(m.replica_counts(), vec![1, 1]);
    }
}
