//! Path latency of a mapping.
//!
//! The period measures throughput; the other metric of the pipelined-
//! workflow literature the paper builds on (Subhlok & Vondran; Vydyanathan
//! et al. — references [11, 12, 14, 15]) is **latency**: the traversal
//! time of a single data set. With replication, different data sets follow
//! different paths (Proposition 1), so latency is per-path. On a chain it
//! is the plain sum
//!
//! ```text
//! L(j) = Σ_i  w_i / Π_{proc(i, j)}  +  Σ_i δ_i / b_{proc(i,j), proc(i+1,j)}
//! ```
//!
//! and on a series-parallel workflow the longest-path recurrence over the
//! DAG (a stage starts when its slowest in-edge transfer lands), which
//! reduces to the sum on chains bit-for-bit.
//!
//! This module computes unloaded (contention-free) path latencies and their
//! distribution over the `m` paths; steady-state *sojourn* times under load
//! come from `repwf-sim`'s clocked-arrival mode.

use crate::model::{CommModel, Instance, InstanceView};
use crate::paths::{mapping_num_paths, path_of_view};

/// Latency statistics over the distinct paths of a mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Number of distinct paths sampled (= `m` when it fits the budget).
    pub paths: u64,
    /// Minimum unloaded latency over the sampled paths.
    pub min: f64,
    /// Maximum unloaded latency.
    pub max: f64,
    /// Mean unloaded latency (uniform over paths = long-run mean over data
    /// sets, since paths repeat cyclically).
    pub mean: f64,
    /// Index (data-set residue) of a path attaining the maximum.
    pub argmax: u64,
}

/// Unloaded latency of the path taken by data set `j`.
///
/// Under the overlap model the three phases of consecutive operations
/// cannot overlap *for a single data set* (they are data-dependent), so the
/// unloaded latency is the plain sum under both communication models; the
/// distinction only matters under contention.
pub fn path_latency(inst: &Instance, j: u128) -> f64 {
    path_latency_view(inst.view(), j)
}

/// [`path_latency`] on a borrowed view.
pub fn path_latency_view(view: InstanceView<'_>, j: u128) -> f64 {
    let path = path_of_view(view, j);
    let wf = view.pipeline;
    let n = path.len();
    // Longest-path DP in topological (stage-id) order: a stage is ready
    // when its slowest in-edge transfer lands. On a chain this folds to
    // the historical left-to-right sum with identical association.
    let mut finish = vec![0.0f64; n];
    for (i, &u) in path.iter().enumerate() {
        let mut ready = 0.0f64;
        for &e in wf.in_edges(i) {
            let (src, _) = wf.edge(e);
            ready = ready.max(finish[src] + view.comm_time(e, path[src], u));
        }
        finish[i] = ready + view.comp_time(i, u);
    }
    finish[n - 1]
}

/// Latency statistics over up to `budget` of the `m` distinct paths
/// (all of them when `m ≤ budget`; a uniform stride sample otherwise).
pub fn latency_report(inst: &Instance, budget: u64) -> LatencyReport {
    latency_report_view(inst.view(), budget)
}

/// [`latency_report`] on a borrowed view — the path the latency-capped
/// annealing filter takes, so a latency check never clones the instance.
pub fn latency_report_view(view: InstanceView<'_>, budget: u64) -> LatencyReport {
    let m = mapping_num_paths(view.mapping).unwrap_or(u128::MAX);
    let count = m.min(budget as u128).max(1);
    let stride = (m / count).max(1);
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut argmax = 0u64;
    for k in 0..count {
        let j = k * stride;
        let l = path_latency_view(view, j);
        if l > max {
            max = l;
            argmax = j as u64;
        }
        min = min.min(l);
        sum += l;
    }
    LatencyReport { paths: count as u64, min, max, mean: sum / count as f64, argmax }
}

/// Lower bound on the steady-state sojourn time: under load a data set can
/// never traverse faster than unloaded, and under either one-port model the
/// sojourn is also at least the period (operations of consecutive data sets
/// on the same resources serialize).
pub fn sojourn_lower_bound(inst: &Instance, model: CommModel, period: f64) -> f64 {
    let _ = model;
    latency_report(inst, 1024).min.max(period)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};

    fn inst() -> Instance {
        // Two stages; second replicated on a fast and a slow processor.
        let pipeline = Pipeline::new(vec![4.0, 12.0], vec![2.0]).unwrap();
        let mut platform = Platform::uniform(3, 1.0, 1.0);
        platform.set_speed(1, 2.0); // fast replica
        platform.set_speed(2, 0.5); // slow replica
        let mapping = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn per_path_latency_values() {
        let i = inst();
        // Path 0: P0 → P1: 4 + 2 + 12/2 = 12. Path 1: P0 → P2: 4 + 2 + 24 = 30.
        assert!((path_latency(&i, 0) - 12.0).abs() < 1e-12);
        assert!((path_latency(&i, 1) - 30.0).abs() < 1e-12);
        assert!((path_latency(&i, 2) - 12.0).abs() < 1e-12, "paths repeat mod m");
    }

    #[test]
    fn report_over_all_paths() {
        let i = inst();
        let r = latency_report(&i, 100);
        assert_eq!(r.paths, 2);
        assert!((r.min - 12.0).abs() < 1e-12);
        assert!((r.max - 30.0).abs() < 1e-12);
        assert!((r.mean - 21.0).abs() < 1e-12);
        assert_eq!(r.argmax, 1);
    }

    #[test]
    fn budget_sampling() {
        let i = inst();
        let r = latency_report(&i, 1);
        assert_eq!(r.paths, 1);
        assert!((r.min - r.max).abs() < 1e-12);
    }

    #[test]
    fn one_to_one_has_single_latency() {
        let pipeline = Pipeline::new(vec![3.0, 5.0], vec![1.0]).unwrap();
        let platform = Platform::uniform(2, 1.0, 1.0);
        let mapping = Mapping::one_to_one(vec![0, 1]).unwrap();
        let i = Instance::new(pipeline, platform, mapping).unwrap();
        let r = latency_report(&i, 16);
        assert_eq!(r.paths, 1);
        assert!((r.min - 9.0).abs() < 1e-12);
    }

    #[test]
    fn sojourn_bound_dominates_period_and_latency() {
        let i = inst();
        let b = sojourn_lower_bound(&i, CommModel::Overlap, 50.0);
        assert!((b - 50.0).abs() < 1e-12, "period dominates here");
        let b2 = sojourn_lower_bound(&i, CommModel::Overlap, 1.0);
        assert!((b2 - 12.0).abs() < 1e-12, "min latency dominates here");
    }

    #[test]
    fn latency_at_least_sum_of_fastest_ops() {
        // Sanity on a replicated middle stage: every path's latency is at
        // least the sum over stages of the fastest replica's time.
        let i = inst();
        let floor: f64 = 4.0 + 2.0 + 6.0;
        let r = latency_report(&i, 100);
        assert!(r.min >= floor - 1e-12);
    }
}
