//! Weighted (non-uniform) round-robin allocation — an extension.
//!
//! §2 of the paper notes that plain round-robin "may lead to a load
//! imbalance: more data sets could be allocated to faster processors", but
//! enforces uniform round-robin because all prior work does. This module
//! lifts the restriction while keeping everything analyzable: each stage
//! gets a periodic **allocation pattern** — a finite word over its replica
//! indices, e.g. `[0, 0, 1]` sends data sets `0, 1 (mod 3)` to replica 0
//! and data set `2 (mod 3)` to replica 1. Uniform round-robin is the
//! special case `[0, 1, …, m_i − 1]`.
//!
//! The timed-Petri-net model survives intact: the grid now has
//! `m = lcm(L_0, …, L_{n−1})` rows (patterns replace residues in
//! Proposition 1), and each resource's circuit chains *its* rows in
//! increasing order. The critical-cycle characterization and the
//! earliest-firing simulator carry over unchanged; only the Theorem 1
//! pattern decomposition is specific to uniform round-robin, so weighted
//! instances are analyzed through the full TPN (or the simulator).

use crate::model::{CommModel, Instance, ProcId};
use crate::paths::lcm;
use crate::tpn_build::{BuildError, BuildOptions, BuiltTpn};
use std::fmt;
use tpn::net::{TimedEventGraph, TransitionId};

/// A periodic allocation: `patterns[i]` is the word of replica indices for
/// stage `i` (indices into `mapping.procs(i)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedAllocation {
    patterns: Vec<Vec<usize>>,
}

/// Validation errors for allocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationError {
    /// Pattern count must equal the stage count.
    StageCountMismatch {
        /// patterns provided
        patterns: usize,
        /// stages in the mapping
        stages: usize,
    },
    /// A pattern is empty.
    EmptyPattern(usize),
    /// A pattern references a replica index ≥ `m_i`.
    BadReplica {
        /// the stage
        stage: usize,
        /// the offending replica index
        replica: usize,
    },
    /// A replica is never used by its stage's pattern (it would idle
    /// forever; remove it from the mapping instead).
    UnusedReplica {
        /// the stage
        stage: usize,
        /// the never-scheduled replica
        replica: usize,
    },
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::StageCountMismatch { patterns, stages } => {
                write!(f, "{patterns} patterns for {stages} stages")
            }
            AllocationError::EmptyPattern(i) => write!(f, "empty pattern for stage {i}"),
            AllocationError::BadReplica { stage, replica } => {
                write!(f, "stage {stage}: replica index {replica} out of range")
            }
            AllocationError::UnusedReplica { stage, replica } => {
                write!(f, "stage {stage}: replica {replica} never scheduled")
            }
        }
    }
}

impl std::error::Error for AllocationError {}

impl WeightedAllocation {
    /// Validates patterns against an instance's mapping.
    pub fn new(patterns: Vec<Vec<usize>>, inst: &Instance) -> Result<Self, AllocationError> {
        if patterns.len() != inst.num_stages() {
            return Err(AllocationError::StageCountMismatch {
                patterns: patterns.len(),
                stages: inst.num_stages(),
            });
        }
        for (i, pat) in patterns.iter().enumerate() {
            if pat.is_empty() {
                return Err(AllocationError::EmptyPattern(i));
            }
            let m_i = inst.mapping.replicas(i);
            for &r in pat {
                if r >= m_i {
                    return Err(AllocationError::BadReplica { stage: i, replica: r });
                }
            }
            for r in 0..m_i {
                if !pat.contains(&r) {
                    return Err(AllocationError::UnusedReplica { stage: i, replica: r });
                }
            }
        }
        Ok(WeightedAllocation { patterns })
    }

    /// The uniform round-robin allocation of an instance (pattern
    /// `[0, 1, …, m_i−1]` per stage).
    pub fn round_robin(inst: &Instance) -> Self {
        WeightedAllocation {
            patterns: (0..inst.num_stages()).map(|i| (0..inst.mapping.replicas(i)).collect()).collect(),
        }
    }

    /// Weight-proportional allocation: replica `r` of stage `i` appears
    /// `weights[i][r]` times, spread as evenly as possible (largest-
    /// remainder spacing keeps bursts short).
    pub fn proportional(weights: &[Vec<usize>], inst: &Instance) -> Result<Self, AllocationError> {
        let mut patterns = Vec::with_capacity(weights.len());
        for w in weights {
            let total: usize = w.iter().sum();
            let mut pat = Vec::with_capacity(total);
            // Interleave by a simple earliest-deadline scheme.
            let mut credit: Vec<f64> = vec![0.0; w.len()];
            for _ in 0..total {
                for (r, &wr) in w.iter().enumerate() {
                    credit[r] += wr as f64 / total as f64;
                }
                let r = (0..w.len())
                    .max_by(|&a, &b| credit[a].partial_cmp(&credit[b]).expect("finite"))
                    .expect("non-empty weights");
                credit[r] -= 1.0;
                pat.push(r);
            }
            patterns.push(pat);
        }
        WeightedAllocation::new(patterns, &Instance {
            pipeline: inst.pipeline.clone(),
            platform: inst.platform.clone(),
            mapping: inst.mapping.clone(),
        })
    }

    /// Pattern of stage `i`.
    pub fn pattern(&self, i: usize) -> &[usize] {
        &self.patterns[i]
    }

    /// The number of TPN rows: `lcm` of the pattern lengths.
    pub fn num_rows(&self) -> Option<u128> {
        self.patterns.iter().try_fold(1u128, |acc, p| lcm(acc, p.len() as u128))
    }

    /// Processor serving stage `i` of data set `d`.
    pub fn proc_for(&self, inst: &Instance, i: usize, d: u64) -> ProcId {
        let pat = &self.patterns[i];
        inst.mapping.procs(i)[pat[(d % pat.len() as u64) as usize]]
    }
}

/// Builds the full TPN of a weighted-allocation mapping. Structure follows
/// `tpn_build` exactly, with "rows of replica β" generalized to "rows whose
/// pattern entry selects β".
pub fn build_weighted_tpn(
    inst: &Instance,
    alloc: &WeightedAllocation,
    model: CommModel,
    opts: &BuildOptions,
) -> Result<BuiltTpn, BuildError> {
    let n = inst.num_stages();
    let m = alloc.num_rows().ok_or(BuildError::PathCountOverflow)?;
    let cols = (2 * n - 1) as u128;
    let transitions = m.checked_mul(cols).ok_or(BuildError::PathCountOverflow)?;
    if transitions > opts.max_transitions as u128 {
        return Err(BuildError::TooLarge { m, transitions, cap: opts.max_transitions });
    }
    let (rows, cols) = (m as usize, cols as usize);
    let proc_at = |i: usize, j: usize| -> ProcId {
        let pat = alloc.pattern(i);
        inst.mapping.procs(i)[pat[j % pat.len()]]
    };

    let mut net = TimedEventGraph::with_capacity(rows * cols, rows * cols * 3);
    for j in 0..rows {
        for c in 0..cols {
            let i = c / 2;
            if c % 2 == 0 {
                let u = proc_at(i, j);
                let label = if opts.labels { format!("S{i}/P{u} r{j}") } else { String::new() };
                net.add_transition(inst.comp_time(i, u), label);
            } else {
                let u = proc_at(i, j);
                let v = proc_at(i + 1, j);
                let label = if opts.labels { format!("F{i}:P{u}>P{v} r{j}") } else { String::new() };
                net.add_transition(inst.comm_time(i, u, v), label);
            }
        }
    }
    let at = |j: usize, c: usize| TransitionId((j * cols + c) as u32);
    for j in 0..rows {
        for c in 0..cols - 1 {
            net.add_place(at(j, c), at(j, c + 1), 0, String::new());
        }
    }
    let rows_of = |i: usize, beta: usize| -> Vec<usize> {
        (0..rows).filter(|&j| alloc.pattern(i)[j % alloc.pattern(i).len()] == beta).collect()
    };
    let circuit = |net: &mut TimedEventGraph, group: &[usize], c_from: usize, c_to: usize| {
        for w in 0..group.len() {
            let (a, b) = (group[w], group[(w + 1) % group.len()]);
            let tokens = u32::from(w + 1 == group.len());
            net.add_place(at(a, c_from), at(b, c_to), tokens, String::new());
        }
    };
    match model {
        CommModel::Overlap => {
            for i in 0..n {
                for beta in 0..inst.mapping.replicas(i) {
                    let group = rows_of(i, beta);
                    circuit(&mut net, &group, 2 * i, 2 * i);
                    if i + 1 < n {
                        circuit(&mut net, &group, 2 * i + 1, 2 * i + 1); // out-port
                    }
                    if i > 0 {
                        circuit(&mut net, &group, 2 * i - 1, 2 * i - 1); // in-port
                    }
                }
            }
        }
        CommModel::Strict => {
            for i in 0..n {
                let last_col = if i + 1 == n { 2 * i } else { 2 * i + 1 };
                let first_col = if i == 0 { 0 } else { 2 * i - 1 };
                for beta in 0..inst.mapping.replicas(i) {
                    let group = rows_of(i, beta);
                    circuit(&mut net, &group, last_col, first_col);
                }
            }
        }
    }
    Ok(BuiltTpn { net, rows, cols })
}

/// Per-data-set period of a weighted allocation, via the full TPN.
pub fn weighted_period(
    inst: &Instance,
    alloc: &WeightedAllocation,
    model: CommModel,
    opts: &BuildOptions,
) -> Result<f64, crate::period::PeriodError> {
    let built = build_weighted_tpn(inst, alloc, model, opts)?;
    let sol = tpn::analysis::period(&built.net)
        .map_err(|e| crate::period::PeriodError::Analysis(e.to_string()))?
        .expect("weighted TPNs contain circuits");
    Ok(sol.period / built.rows as f64)
}

/// Direct earliest-start simulation under a weighted allocation (mirrors
/// `repwf-sim`'s recurrences); returns the sustainable period estimate.
pub fn simulate_weighted(
    inst: &Instance,
    alloc: &WeightedAllocation,
    model: CommModel,
    data_sets: u64,
) -> f64 {
    let n = inst.num_stages();
    let p = inst.platform.num_procs();
    let mut cpu = vec![0.0f64; p];
    let mut inp = vec![0.0f64; p];
    let mut outp = vec![0.0f64; p];
    let mut completion = Vec::with_capacity(data_sets as usize);
    for d in 0..data_sets {
        let mut ready = 0.0f64;
        for i in 0..n {
            let u = alloc.proc_for(inst, i, d);
            let start = ready.max(cpu[u]);
            let end = start + inst.comp_time(i, u);
            cpu[u] = end;
            ready = end;
            if i + 1 < n {
                let v = alloc.proc_for(inst, i + 1, d);
                let tt = inst.comm_time(i, u, v);
                let start = match model {
                    CommModel::Overlap => ready.max(outp[u]).max(inp[v]),
                    CommModel::Strict => ready.max(cpu[u]).max(cpu[v]),
                };
                let end = start + tt;
                match model {
                    CommModel::Overlap => {
                        outp[u] = end;
                        inp[v] = end;
                    }
                    CommModel::Strict => {
                        cpu[u] = end;
                        cpu[v] = end;
                    }
                }
                ready = end;
            }
        }
        completion.push(ready);
    }
    // Sustainable rate: worst per-class slope, classes = last-stage pattern.
    let l = alloc.pattern(n - 1).len();
    let d = completion.len();
    let mut worst = 0.0f64;
    for r in 0..l.min(d / 4) {
        let hi = r + ((d - 1 - r) / l) * l;
        let steps = (hi - r) / l;
        let lo = r + (steps / 3) * l;
        if hi > lo {
            worst = worst.max((completion[hi] - completion[lo]) / (hi - lo) as f64);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};
    use crate::period::{compute_period, Method};

    /// One stage on a fast and a slow processor; negligible second stage so
    /// the pipeline is valid.
    fn skewed() -> Instance {
        let pipeline = Pipeline::new(vec![12.0, 0.001], vec![0.001]).unwrap();
        let mut platform = Platform::uniform(3, 1.0, 1000.0);
        platform.set_speed(0, 2.0); // fast: comp 6
        platform.set_speed(1, 1.0); // slow: comp 12
        let mapping = Mapping::new(vec![vec![0, 1], vec![2]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn validation() {
        let inst = skewed();
        assert!(WeightedAllocation::new(vec![vec![0, 1]], &inst).is_err(), "stage count");
        assert!(matches!(
            WeightedAllocation::new(vec![vec![0, 5], vec![0]], &inst),
            Err(AllocationError::BadReplica { .. })
        ));
        assert!(matches!(
            WeightedAllocation::new(vec![vec![0, 0], vec![0]], &inst),
            Err(AllocationError::UnusedReplica { stage: 0, replica: 1 })
        ));
        assert!(matches!(
            WeightedAllocation::new(vec![vec![], vec![0]], &inst),
            Err(AllocationError::EmptyPattern(0))
        ));
        assert!(WeightedAllocation::new(vec![vec![0, 1, 0], vec![0]], &inst).is_ok());
    }

    #[test]
    fn uniform_pattern_matches_plain_round_robin() {
        let inst = skewed();
        let alloc = WeightedAllocation::round_robin(&inst);
        for model in [CommModel::Overlap, CommModel::Strict] {
            let plain = compute_period(&inst, model, Method::FullTpn).unwrap().period;
            let weighted =
                weighted_period(&inst, &alloc, model, &BuildOptions::default()).unwrap();
            assert!(
                (plain - weighted).abs() < 1e-9 * plain,
                "{model}: {plain} vs {weighted}"
            );
        }
    }

    #[test]
    fn weighting_the_fast_replica_helps() {
        // Plain RR: the slow replica (12 per data set it serves, every 2nd)
        // dictates 6 per data set. Pattern [0,0,1]: fast serves 2/3 at 6
        // each (circuit: 12 per 3 datasets = 4), slow serves 1/3 (12 per 3
        // = 4): period 4 < 6.
        let inst = skewed();
        let rr = compute_period(&inst, CommModel::Overlap, Method::FullTpn).unwrap().period;
        let alloc = WeightedAllocation::new(vec![vec![0, 0, 1], vec![0]], &inst).unwrap();
        let weighted =
            weighted_period(&inst, &alloc, CommModel::Overlap, &BuildOptions::default()).unwrap();
        assert!((rr - 6.0005).abs() < 1e-2, "plain RR {rr}");
        assert!((weighted - 4.0005).abs() < 1e-2, "weighted {weighted}");
        assert!(weighted < rr);
    }

    #[test]
    fn proportional_builder_spreads_work() {
        let inst = skewed();
        let alloc = WeightedAllocation::proportional(&[vec![2, 1], vec![1]], &inst).unwrap();
        assert_eq!(alloc.pattern(0).len(), 3);
        assert_eq!(alloc.pattern(0).iter().filter(|&&r| r == 0).count(), 2);
        // earliest-deadline interleave spreads the two fast slots apart
        assert_eq!(alloc.pattern(0), &[0, 1, 0]);
    }

    #[test]
    fn tpn_and_simulation_agree_on_weighted() {
        let inst = skewed();
        let alloc = WeightedAllocation::new(vec![vec![0, 0, 1], vec![0]], &inst).unwrap();
        for model in [CommModel::Overlap, CommModel::Strict] {
            let analytic =
                weighted_period(&inst, &alloc, model, &BuildOptions::default()).unwrap();
            let sim = simulate_weighted(&inst, &alloc, model, 6000);
            assert!(
                (analytic - sim).abs() < 2e-3 * analytic,
                "{model}: tpn {analytic} vs sim {sim}"
            );
        }
    }

    #[test]
    fn optimal_weighting_balances_speeds() {
        // comp times 6 (fast) and 12 (slow): weights 2:1 equalize busy time.
        // Any heavier skew over-loads the fast replica's circuit.
        let inst = skewed();
        let best = WeightedAllocation::new(vec![vec![0, 0, 1], vec![0]], &inst).unwrap();
        let too_much = WeightedAllocation::new(vec![vec![0, 0, 0, 1], vec![0]], &inst).unwrap();
        let p_best =
            weighted_period(&inst, &best, CommModel::Overlap, &BuildOptions::default()).unwrap();
        let p_skew =
            weighted_period(&inst, &too_much, CommModel::Overlap, &BuildOptions::default()).unwrap();
        assert!(p_best < p_skew, "{p_best} vs {p_skew}");
    }

    #[test]
    fn weighted_rows_lcm() {
        let inst = skewed();
        let alloc = WeightedAllocation::new(vec![vec![0, 1, 0], vec![0, 0]], &inst).unwrap();
        assert_eq!(alloc.num_rows(), Some(6));
        let built =
            build_weighted_tpn(&inst, &alloc, CommModel::Overlap, &BuildOptions::default()).unwrap();
        assert_eq!(built.rows, 6);
        assert!(built.net.lint().is_empty());
    }
}
