//! Theorem 1: the polynomial algorithm for the **overlap one-port** model.
//!
//! In the overlap TPN every place is either forward (dataflow) or stays
//! within a column, so every circuit lives in a single column and the period
//! is the worst column — this holds for series-parallel workflows too,
//! because ports are per *edge* and each edge owns one column. Computation
//! columns are trivial (one circuit per processor). For the communication
//! column of an edge with `m_i` sender replicas and `m_{i+1}` receiver
//! replicas (on a chain, file `F_i` between stages `i` and `i+1`), the
//! sub-TPN is a circulant graph on the `m` rows with steps `+m_i`
//! (out-port circuits) and `+m_{i+1}` (in-port circuits).
//! Writing `g = gcd(m_i, m_{i+1})`, `u = m_i/g`, `v = m_{i+1}/g`:
//!
//! * rows split into `g` connected components (residues mod `g`);
//! * inside a component, reindexing rows by `q = (j−ρ)/g` gives steps `+u`
//!   and `+v` on `Z_{m/g}`, and transfer times are periodic in `q mod uv` —
//!   the component is `c = m / lcm(m_i, m_{i+1})` copies of a single `u×v`
//!   **pattern** (the paper's Figures 13/14);
//! * a circuit taking `a` sender-steps and `b` receiver-steps has token
//!   count `(a·u + b·v)·g/m`, so on the pattern quotient the critical ratio
//!   becomes a cycle-ratio problem with integer edge weights `u` and `v`:
//!
//! ```text
//! P̂_col(ρ) = (1/g) · max over circuits of the pattern of Σtime / Σweight
//! ```
//!
//! solved by Howard's iteration on `u·v` vertices and `2·u·v` edges. The
//! full TPN (of possibly astronomical row count `m`) is never materialized;
//! the overall complexity is `O(Σ_i poly(m_i·m_{i+1}))` as in the paper.
//!
//! The equivalence with the full-TPN analysis is property-tested in
//! `crates/core/tests` and the workspace integration tests.

use crate::cycle_time::{cycle_times, max_cycle_time};
use crate::model::{CommModel, Instance, InstanceView, ProcId, StageId};
use crate::paths::gcd;
use maxplus::graph::RatioGraph;
use maxplus::howard::max_cycle_ratio;
use std::fmt;

/// The bottleneck of an overlap-model mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Bottleneck {
    /// A computation: stage `stage` on processor `proc`.
    Computation {
        /// the stage
        stage: StageId,
        /// the processor
        proc: ProcId,
    },
    /// A communication column: the critical circuit of one pattern of the
    /// transfer on edge `file` (on a chain, edge `i` is file `F_i`).
    Communication {
        /// id of the edge whose file is transferred
        file: usize,
        /// residue class (connected component) mod `gcd(m_i, m_{i+1})`
        residue: usize,
        /// rows (data-set indices mod `lcm(m_i, m_{i+1})`) of the critical
        /// pattern circuit
        pattern_rows: Vec<u64>,
    },
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bottleneck::Computation { stage, proc } => write!(f, "computation of S{stage} on P{proc}"),
            Bottleneck::Communication { file, residue, .. } => {
                write!(f, "transfer of F{file} (component {residue})")
            }
        }
    }
}

/// Per-column period contributions of the overlap analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnPeriod {
    /// What the column is.
    pub bottleneck: Bottleneck,
    /// The column's contribution to the per-data-set period.
    pub period: f64,
}

/// The full result of the Theorem 1 algorithm.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapAnalysis {
    /// The per-data-set period `P̂` (inverse throughput).
    pub period: f64,
    /// The critical column.
    pub bottleneck: Bottleneck,
    /// Every column's contribution (computation columns flattened to one
    /// entry per processor).
    pub columns: Vec<ColumnPeriod>,
}

/// The decomposition constants of one communication column
/// (paper Figures 11/13/14; Example C: `(g,u,v,c) = (3,7,9,55)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternInfo {
    /// `g = gcd(m_i, m_{i+1})`: number of connected components.
    pub g: usize,
    /// `u = m_i / g`: pattern rows (senders per component).
    pub u: usize,
    /// `v = m_{i+1} / g`: pattern columns (receivers per component).
    pub v: usize,
    /// `c = m / lcm(m_i, m_{i+1})`: patterns per component (`None` if `m`
    /// overflows).
    pub c: Option<u128>,
    /// `m = lcm(m_0,…,m_{n−1})` (`None` on overflow).
    pub m: Option<u128>,
}

/// Computes the pattern decomposition constants for the chain
/// communication `F_i` between adjacent stages `i` and `i+1` (a
/// convenience over explicit replica slices; DAG callers derive the same
/// constants from an edge's endpoint replica counts).
pub fn pattern_info(replicas: &[usize], i: usize) -> PatternInfo {
    assert!(i + 1 < replicas.len());
    let (mi, mn) = (replicas[i], replicas[i + 1]);
    let g = gcd(mi as u128, mn as u128) as usize;
    let m = crate::paths::num_paths(replicas);
    let l = (mi / g) as u128 * mn as u128; // lcm(m_i, m_{i+1})
    PatternInfo { g, u: mi / g, v: mn / g, c: m.map(|m| m / l), m }
}

/// Builds the pattern cycle-ratio graph for the transfer on edge `e`,
/// residue `rho`: `u·v` vertices `q` (rows `j = rho + g·q` of the
/// component), a sender-step edge `q → q+u (mod uv)` of token-weight `u`
/// and a receiver-step edge `q → q+v (mod uv)` of token-weight `v`, both
/// carrying the transfer time of row `j` as cost. On a chain, edge `i` is
/// the communication `F_i` between stages `i` and `i+1`.
pub fn pattern_graph(inst: &Instance, e: usize, rho: usize) -> RatioGraph {
    pattern_graph_view(inst.view(), e, rho)
}

/// [`pattern_graph`] on a borrowed view.
pub fn pattern_graph_view(view: InstanceView<'_>, e: usize, rho: usize) -> RatioGraph {
    let (src, dst) = view.pipeline.edge(e);
    let procs_s = view.mapping.procs(src);
    let procs_r = view.mapping.procs(dst);
    let (mi, mn) = (procs_s.len(), procs_r.len());
    let g = gcd(mi as u128, mn as u128) as usize;
    let (u, v) = (mi / g, mn / g);
    let nv = u * v;
    let mut graph = RatioGraph::with_capacity(nv, 2 * nv);
    for q in 0..nv {
        let j = rho + g * q; // a representative row of this pattern cell
        let sender = procs_s[j % mi];
        let receiver = procs_r[j % mn];
        let t = view.comm_time(e, sender, receiver);
        graph.add_edge(q as u32, ((q + u) % nv) as u32, t, u as u32);
        graph.add_edge(q as u32, ((q + v) % nv) as u32, t, v as u32);
    }
    graph
}

/// The period contribution of the communication column of edge `e` (max
/// over its `g` components), with the critical component and pattern
/// circuit.
pub fn comm_column_period(inst: &Instance, e: usize) -> ColumnPeriod {
    comm_column_period_view(inst.view(), e)
}

/// [`comm_column_period`] on a borrowed view.
pub fn comm_column_period_view(view: InstanceView<'_>, e: usize) -> ColumnPeriod {
    let (src, dst) = view.pipeline.edge(e);
    let mi = view.mapping.replicas(src);
    let mn = view.mapping.replicas(dst);
    let g = gcd(mi as u128, mn as u128) as usize;
    let mut best = ColumnPeriod {
        bottleneck: Bottleneck::Communication { file: e, residue: 0, pattern_rows: Vec::new() },
        period: f64::NEG_INFINITY,
    };
    for rho in 0..g {
        let graph = pattern_graph_view(view, e, rho);
        let sol = max_cycle_ratio(&graph)
            .expect("pattern graph is well-formed")
            .expect("pattern graph always has circuits");
        let period = sol.ratio / g as f64;
        if period > best.period {
            best = ColumnPeriod {
                bottleneck: Bottleneck::Communication {
                    file: e,
                    residue: rho,
                    pattern_rows: sol.cycle.iter().map(|&q| (rho + g * q as usize) as u64).collect(),
                },
                period,
            };
        }
    }
    best
}

/// Runs the full Theorem 1 analysis: the per-data-set period of the mapping
/// under the **overlap one-port** model, in time polynomial in the
/// replication factors (never in `m`).
pub fn overlap_period(inst: &Instance) -> OverlapAnalysis {
    overlap_period_view(inst.view())
}

/// [`overlap_period`] on a borrowed view — the allocation path taken by
/// `PeriodEngine::compute_view`, which never materializes an owned
/// [`Instance`] for its candidates.
pub fn overlap_period_view(view: InstanceView<'_>) -> OverlapAnalysis {
    let n = view.num_stages();
    let mut columns = Vec::new();
    // Computation columns: processor u of stage i serves every m_i-th data
    // set; its circuit contributes comp_time / m_i.
    for i in 0..n {
        let m_i = view.mapping.replicas(i);
        for &u in view.mapping.procs(i) {
            columns.push(ColumnPeriod {
                bottleneck: Bottleneck::Computation { stage: i, proc: u },
                period: view.comp_time(i, u) / m_i as f64,
            });
        }
    }
    // Communication columns, one per edge (chain: edge i is F_i).
    for e in 0..view.pipeline.num_edges() {
        columns.push(comm_column_period_view(view, e));
    }
    let best = columns
        .iter()
        .max_by(|a, b| a.period.partial_cmp(&b.period).expect("finite periods"))
        .expect("at least one column")
        .clone();
    OverlapAnalysis { period: best.period, bottleneck: best.bottleneck, columns }
}

/// Sanity relation used in tests and reports: the overlap period is at least
/// the maximum cycle-time.
pub fn gap_to_mct(inst: &Instance, analysis: &OverlapAnalysis) -> f64 {
    let (mct, _) = max_cycle_time(inst, CommModel::Overlap);
    analysis.period - mct
}

/// Convenience: `M_ct` from per-resource cycle times (overlap model).
pub fn overlap_mct(inst: &Instance) -> f64 {
    cycle_times(inst)
        .iter()
        .map(|c| c.exec(CommModel::Overlap))
        .fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};

    fn chain_instance(replicas: &[usize], work: f64, file: f64) -> Instance {
        let n = replicas.len();
        let pipeline = Pipeline::new(vec![work; n], vec![file; n - 1]).unwrap();
        let p: usize = replicas.iter().sum();
        let platform = Platform::uniform(p, 1.0, 1.0);
        let mut next = 0;
        let assignment: Vec<Vec<usize>> = replicas
            .iter()
            .map(|&m| {
                let procs: Vec<usize> = (next..next + m).collect();
                next += m;
                procs
            })
            .collect();
        Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
    }

    #[test]
    fn pattern_info_example_c() {
        let info = pattern_info(&[5, 21, 27, 11], 1);
        assert_eq!(info.g, 3);
        assert_eq!(info.u, 7);
        assert_eq!(info.v, 9);
        assert_eq!(info.m, Some(10395));
        assert_eq!(info.c, Some(55));
    }

    #[test]
    fn one_to_one_is_max_resource() {
        let inst = chain_instance(&[1, 1, 1], 4.0, 2.0);
        let a = overlap_period(&inst);
        // comp 4 per stage, comm 2 per link; overlap: max = 4.
        assert!((a.period - 4.0).abs() < 1e-12);
        assert!(matches!(a.bottleneck, Bottleneck::Computation { .. }));
    }

    #[test]
    fn replication_divides_compute() {
        let inst = chain_instance(&[1, 4], 8.0, 0.5);
        let a = overlap_period(&inst);
        // Stage 1: 8/4 = 2; stage 0: 8; comm: sender port (0.5·4)/4 = 0.5.
        assert!((a.period - 8.0).abs() < 1e-12);
    }

    #[test]
    fn sender_port_becomes_bottleneck() {
        // One fast source feeding 3 receivers of a heavy stage: the source's
        // out-port serializes all transfers.
        let inst = chain_instance(&[1, 3], 0.1, 5.0);
        let a = overlap_period(&inst);
        // Out-port: three transfers of 5 per 3 data sets ⇒ 5 per data set.
        assert!((a.period - 5.0).abs() < 1e-12, "period {}", a.period);
        assert!(matches!(a.bottleneck, Bottleneck::Communication { file: 0, .. }));
    }

    #[test]
    fn homogeneous_coprime_fanout() {
        // 2 senders → 3 receivers, all transfer times 6. Sender port: each
        // sends 3 files per 6 data sets: 3 busy units per data set... i.e.
        // (6·3)/6 = 3. Receiver port: (6·2)/6 = 2. P̂ = 3.
        let inst = chain_instance(&[2, 3], 0.0, 6.0);
        let a = overlap_period(&inst);
        assert!((a.period - 3.0).abs() < 1e-12, "period {}", a.period);
    }

    #[test]
    fn components_are_independent() {
        // m_i = m_{i+1} = 2 (g = 2): component ρ has its single link only.
        let mut inst = chain_instance(&[2, 2], 0.0, 1.0);
        // link P0→P2 slow (time 9), P1→P3 fast (1); cross links unused.
        inst.platform.set_bandwidth(0, 2, 1.0 / 9.0);
        let a = overlap_period(&inst);
        // Component 0: transfer 9 every 2 data sets → 4.5.
        assert!((a.period - 4.5).abs() < 1e-12, "period {}", a.period);
        match &a.bottleneck {
            Bottleneck::Communication { residue, .. } => assert_eq!(*residue, 0),
            other => panic!("wrong bottleneck {other:?}"),
        }
    }

    #[test]
    fn mct_is_lower_bound() {
        let inst = chain_instance(&[3, 4], 2.0, 7.0);
        let a = overlap_period(&inst);
        assert!(gap_to_mct(&inst, &a) >= -1e-9);
    }

    #[test]
    fn single_stage_no_comm() {
        let inst = chain_instance(&[3], 9.0, 0.0);
        let a = overlap_period(&inst);
        assert!((a.period - 3.0).abs() < 1e-12);
    }
}
