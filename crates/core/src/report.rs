//! Consolidated human-readable analysis of an instance, used by the
//! `analyze` CLI and the examples.

use crate::cycle_time::cycle_times;
use crate::latency::latency_report;
use crate::model::{CommModel, Instance};
use crate::overlap_poly::{overlap_period, Bottleneck};
use crate::paths::instance_num_paths;
use crate::period::{compute_period, Method, PeriodError};
use std::fmt::Write as _;

/// Renders the full analysis of an instance as text: mapping summary,
/// per-resource cycle times, periods under both models, the overlap-model
/// column breakdown and the latency profile.
pub fn render(inst: &Instance) -> Result<String, PeriodError> {
    let mut out = String::new();
    let n = inst.num_stages();
    let _ = writeln!(out, "== workflow ==");
    for i in 0..n {
        let procs: Vec<String> = inst.mapping.procs(i).iter().map(|u| format!("P{u}")).collect();
        let _ = writeln!(
            out,
            "  S{i}: work {:>10.3}  on {} ({} replicas)",
            inst.pipeline.work(i),
            procs.join(", "),
            inst.mapping.replicas(i)
        );
        if i + 1 < n {
            let _ = writeln!(out, "       file F{i}: {:>10.3}", inst.pipeline.file(i));
        }
    }
    let m = instance_num_paths(inst);
    let _ = writeln!(
        out,
        "  paths m = {}",
        m.map(|m| m.to_string()).unwrap_or_else(|| "overflow".into())
    );

    let _ = writeln!(out, "\n== per-resource cycle times (per data set) ==");
    let _ = writeln!(
        out,
        "  {:<5} {:<6} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "proc", "stage", "C_in", "C_comp", "C_out", "exec(ovl)", "exec(strict)"
    );
    for ct in cycle_times(inst) {
        let _ = writeln!(
            out,
            "  P{:<4} S{:<5} {:>10.3} {:>10.3} {:>10.3} {:>12.3} {:>12.3}",
            ct.proc,
            ct.stage,
            ct.c_in,
            ct.c_comp,
            ct.c_out,
            ct.exec(CommModel::Overlap),
            ct.exec(CommModel::Strict)
        );
    }

    for model in [CommModel::Overlap, CommModel::Strict] {
        let r = compute_period(inst, model, Method::Auto)?;
        let _ = writeln!(out, "\n== {model} ==");
        let _ = writeln!(out, "  period      {:>12.4}   (throughput {:.6})", r.period, r.throughput());
        let _ = writeln!(out, "  M_ct        {:>12.4}", r.mct);
        let _ = writeln!(
            out,
            "  critical    {} ({})",
            r.critical,
            if r.has_critical_resource(1e-9) { "critical resource" } else { "NO critical resource" }
        );
    }

    let _ = writeln!(out, "\n== overlap column breakdown (Theorem 1) ==");
    let analysis = overlap_period(inst);
    for col in &analysis.columns {
        let tag = match &col.bottleneck {
            Bottleneck::Computation { stage, proc } => format!("S{stage} on P{proc}"),
            Bottleneck::Communication { file, residue, .. } => {
                format!("F{file} component {residue}")
            }
        };
        let marker = if (col.period - analysis.period).abs() < 1e-12 { "  <= critical" } else { "" };
        let _ = writeln!(out, "  {:<24} {:>12.4}{}", tag, col.period, marker);
    }

    let lat = latency_report(inst, 1024);
    let _ = writeln!(out, "\n== unloaded latency over {} paths ==", lat.paths);
    let _ = writeln!(
        out,
        "  min {:.3} / mean {:.3} / max {:.3} (worst path: data sets ≡ {} mod m)",
        lat.min, lat.mean, lat.max, lat.argmax
    );

    let p_overlap = compute_period(inst, CommModel::Overlap, Method::Auto)?.period;
    let findings = crate::diagnose::diagnose(inst, CommModel::Overlap, Some(p_overlap));
    if !findings.is_empty() {
        let _ = writeln!(out, "\n== diagnostics ==");
        for d in findings {
            let _ = writeln!(out, "  - {d}");
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{example_a, example_b};

    #[test]
    fn report_contains_key_numbers() {
        let text = render(&example_a()).unwrap();
        assert!(text.contains("189.0000"), "overlap period");
        assert!(text.contains("230.6667"), "strict period");
        assert!(text.contains("NO critical resource"), "strict gap");
        assert!(text.contains("paths m = 6"));
    }

    #[test]
    fn report_marks_critical_column() {
        let text = render(&example_b()).unwrap();
        assert!(text.contains("<= critical"));
        assert!(text.contains("F0 component"));
    }

    #[test]
    fn report_handles_single_stage() {
        use crate::model::{Instance, Mapping, Pipeline, Platform};
        let inst = Instance::new(
            Pipeline::new(vec![8.0], vec![]).unwrap(),
            Platform::uniform(2, 2.0, 1.0),
            Mapping::new(vec![vec![0, 1]]).unwrap(),
        )
        .unwrap();
        let text = render(&inst).unwrap();
        assert!(text.contains("2 replicas"));
        assert!(text.contains("2.0000"), "period 8/(2·2)");
    }
}
