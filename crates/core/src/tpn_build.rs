//! §3 of the paper: the timed Petri net model of a mapping, generalized
//! from the paper's linear chain to series-parallel workflows.
//!
//! The TPN is a grid of `m = lcm(m_0,…,m_{n−1})` rows — one per path of
//! Proposition 1 — and `n + E` columns: walking the stages in topological
//! order, each stage contributes its computation column followed by one
//! communication column per out-edge (ascending edge id). On a linear
//! chain (`E = n − 1`) this is exactly the paper's `2n−1`-column grid —
//! column `2i` is stage `S_i`, column `2i+1` is file `F_i` — and every
//! transition, place and label is emitted in the same order with the same
//! value, so chain nets are byte-identical to the historical builder.
//! Dependences (places) are:
//!
//! 1. **Dataflow** (both models): within a row, each edge's transfer
//!    follows its producer's computation and precedes its consumer's
//!    (Fig. 3a; on a chain this is the row order).
//! 2. **Overlap model** (Figs. 3b–3d): per-column round-robin circuits — one
//!    circuit per computing processor (stage columns), per sending port
//!    (edge columns, grouped by sender replica) and per receiving port
//!    (edge columns, grouped by receiver replica). Each circuit carries one
//!    token on its wrap-around place. Because ports are per *edge*, every
//!    circuit stays within a single column and the Theorem 1 column
//!    decomposition survives on DAGs.
//! 3. **Strict model** (Fig. 5a): one circuit per *processor* chaining its
//!    receive→compute→send sequences across its rows (the last send of one
//!    row precedes the first receive of the processor's next row), one
//!    token on the wrap-around; plus 0-token serialization places between
//!    a stage's consecutive same-row receives and consecutive same-row
//!    sends (a processor moves one file at a time). A chain stage has at
//!    most one in- and one out-edge, so chains gain no extra places.
//!
//! Construction is `O(m·(n + E))`.

use crate::model::{CommModel, Instance, InstanceView};
use crate::paths::{instance_num_paths, mapping_num_paths};
use std::fmt;
use tpn::net::{TimedEventGraph, TransitionId};

/// Options for TPN construction.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Attach human-readable labels to transitions and places (costs memory
    /// on large nets; required for DOT export and Gantt labelling).
    pub labels: bool,
    /// Refuse to build nets with more transitions than this.
    pub max_transitions: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions { labels: true, max_transitions: 4_000_000 }
    }
}

/// Errors from TPN construction.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// `m·(n+E)` exceeds [`BuildOptions::max_transitions`] (the strict
    /// model has no known polynomial alternative; use the simulator).
    TooLarge {
        /// Number of TPN rows `m`.
        m: u128,
        /// Required number of transitions.
        transitions: u128,
        /// The configured cap.
        cap: usize,
    },
    /// `lcm(m_0,…,m_{n−1})` overflows `u128`.
    PathCountOverflow,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::TooLarge { m, transitions, cap } => write!(
                f,
                "TPN would need {transitions} transitions ({m} rows), above the cap of {cap}"
            ),
            BuildError::PathCountOverflow => write!(f, "lcm of replication factors overflows u128"),
        }
    }
}

impl std::error::Error for BuildError {}

/// The built net plus the grid book-keeping needed to interpret it.
#[derive(Debug, Clone)]
pub struct BuiltTpn {
    /// The timed event graph.
    pub net: TimedEventGraph,
    /// Number of rows `m`.
    pub rows: usize,
    /// Number of columns `n + E` (chain: `2n−1`).
    pub cols: usize,
}

/// Transition id at grid position (row `j`, column `c`) of a row-major
/// `rows × cols` TPN grid — the single place that knows the layout
/// produced by [`build_tpn_into`].
pub fn grid_transition(cols: usize, j: usize, c: usize) -> TransitionId {
    TransitionId((j * cols + c) as u32)
}

impl BuiltTpn {
    /// Transition at grid position (row `j`, column `c`).
    pub fn at(&self, j: usize, c: usize) -> TransitionId {
        debug_assert!(j < self.rows && c < self.cols);
        grid_transition(self.cols, j, c)
    }

    /// Grid position of a transition.
    pub fn pos(&self, t: TransitionId) -> (usize, usize) {
        let i = t.0 as usize;
        (i / self.cols, i % self.cols)
    }

    /// All transitions of one column (a computation stage or a file
    /// transfer), top row first.
    pub fn column(&self, c: usize) -> Vec<TransitionId> {
        (0..self.rows).map(|j| self.at(j, c)).collect()
    }
}

fn checked_dims(view: InstanceView<'_>, opts: &BuildOptions) -> Result<(usize, usize), BuildError> {
    let m = mapping_num_paths(view.mapping).ok_or(BuildError::PathCountOverflow)?;
    let cols = (view.num_stages() + view.pipeline.num_edges()) as u128;
    let transitions = m.checked_mul(cols).ok_or(BuildError::PathCountOverflow)?;
    if transitions > opts.max_transitions as u128 {
        return Err(BuildError::TooLarge { m, transitions, cap: opts.max_transitions });
    }
    Ok((m as usize, cols as usize))
}

/// Column index of every stage and every edge in the grid layout: stages
/// in topological order, each immediately followed by its out-edge
/// columns (ascending edge id). Chain: stage `i` at `2i`, edge `i` at
/// `2i+1`.
fn column_map(view: InstanceView<'_>) -> (Vec<usize>, Vec<usize>) {
    let wf = view.pipeline;
    let n = wf.num_stages();
    let mut col_of_stage = vec![0usize; n];
    let mut col_of_edge = vec![0usize; wf.num_edges()];
    let mut c = 0;
    for (i, col) in col_of_stage.iter_mut().enumerate() {
        *col = c;
        c += 1;
        for &e in wf.out_edges(i) {
            col_of_edge[e] = c;
            c += 1;
        }
    }
    (col_of_stage, col_of_edge)
}

/// Builds the full TPN of a mapping under the given communication model.
pub fn build_tpn(inst: &Instance, model: CommModel, opts: &BuildOptions) -> Result<BuiltTpn, BuildError> {
    let mut net = TimedEventGraph::new();
    let (rows, cols) = build_tpn_into(inst, model, opts, &mut net)?;
    Ok(BuiltTpn { net, rows, cols })
}

/// [`build_tpn`] into a caller-owned net: clears `net` and rebuilds it in
/// place, reusing its transition/place buffers. Returns the grid
/// dimensions `(rows, cols)`. This is the arena primitive of
/// [`crate::engine::PeriodEngine`], which re-evaluates thousands of
/// mappings without re-allocating the net.
pub fn build_tpn_into(
    inst: &Instance,
    model: CommModel,
    opts: &BuildOptions,
    net: &mut TimedEventGraph,
) -> Result<(usize, usize), BuildError> {
    build_tpn_view_into(inst.view(), model, opts, net)
}

/// [`build_tpn_into`] on a borrowed [`InstanceView`] — no owned `Instance`
/// required, which is how the period engine evaluates candidate mappings
/// without cloning pipeline/platform/mapping.
pub fn build_tpn_view_into(
    view: InstanceView<'_>,
    model: CommModel,
    opts: &BuildOptions,
    net: &mut TimedEventGraph,
) -> Result<(usize, usize), BuildError> {
    let (rows, cols) = checked_dims(view, opts)?;
    let wf = view.pipeline;
    let n = view.num_stages();
    net.clear();

    // --- transitions, row-major in column order (stage, then out-edges) ---
    for j in 0..rows {
        for i in 0..n {
            let u = view.mapping.procs(i)[j % view.mapping.replicas(i)];
            let label = if opts.labels { format!("S{i}/P{u} r{j}") } else { String::new() };
            net.add_transition(view.comp_time(i, u), label);
            for &e in wf.out_edges(i) {
                let (_, dst) = wf.edge(e);
                let v = view.mapping.procs(dst)[j % view.mapping.replicas(dst)];
                let label =
                    if opts.labels { format!("F{e}:P{u}>P{v} r{j}") } else { String::new() };
                net.add_transition(view.comm_time(e, u, v), label);
            }
        }
    }
    let at = |j: usize, c: usize| TransitionId((j * cols + c) as u32);
    let (col_of_stage, col_of_edge) = column_map(view);

    // --- constraint 1: dataflow (both models) ---
    // Per row, per edge (producer order): computation feeds the transfer,
    // the transfer feeds the consumer's computation. On a chain this emits
    // exactly the historical row-order places c → c+1.
    for j in 0..rows {
        for i in 0..n {
            for &e in wf.out_edges(i) {
                let (src, dst) = wf.edge(e);
                let (cs, ce, cd) = (col_of_stage[src], col_of_edge[e], col_of_stage[dst]);
                let label = if opts.labels { format!("row{j} c{cs}>{ce}") } else { String::new() };
                net.add_place(at(j, cs), at(j, ce), 0, label);
                let label = if opts.labels { format!("row{j} c{ce}>{cd}") } else { String::new() };
                net.add_place(at(j, ce), at(j, cd), 0, label);
            }
        }
    }

    // Adds the round-robin circuit over `group` (ascending rows) in column
    // `c`: chain places with 0 tokens, wrap-around with 1 token. A
    // single-row group becomes a tokenized self-loop.
    let circuit = |net: &mut TimedEventGraph, group: &[usize], c_from: usize, c_to: usize, tag: &str| {
        for w in 0..group.len() {
            let (a, b) = (group[w], group[(w + 1) % group.len()]);
            let tokens = u32::from(w + 1 == group.len());
            let label = if opts.labels { format!("{tag} r{a}>r{b}") } else { String::new() };
            net.add_place(at(a, c_from), at(b, c_to), tokens, label);
        }
    };

    match model {
        CommModel::Overlap => {
            for (i, &ci) in col_of_stage.iter().enumerate() {
                let m_i = view.mapping.replicas(i);
                // constraint 2: computation round-robin per processor
                for beta in 0..m_i {
                    let group: Vec<usize> = (beta..rows).step_by(m_i).collect();
                    circuit(net, &group, ci, ci, &format!("cpu S{i}#{beta}"));
                }
                for &e in wf.out_edges(i) {
                    let (_, dst) = wf.edge(e);
                    let m_dst = view.mapping.replicas(dst);
                    let ce = col_of_edge[e];
                    // constraint 3: out-port round-robin per sender
                    for alpha in 0..m_i {
                        let group: Vec<usize> = (alpha..rows).step_by(m_i).collect();
                        circuit(net, &group, ce, ce, &format!("out F{e}#{alpha}"));
                    }
                    // constraint 4: in-port round-robin per receiver
                    for beta in 0..m_dst {
                        let group: Vec<usize> = (beta..rows).step_by(m_dst).collect();
                        circuit(net, &group, ce, ce, &format!("in F{e}#{beta}"));
                    }
                }
            }
        }
        CommModel::Strict => {
            for (i, &ci) in col_of_stage.iter().enumerate() {
                let m_i = view.mapping.replicas(i);
                let ins = wf.in_edges(i);
                let outs = wf.out_edges(i);
                // A processor moves one file at a time: serialize a
                // stage's same-row receives and sends in edge order. A
                // chain stage has ≤1 of each, so this emits nothing there.
                for j in 0..rows {
                    for w in ins.windows(2) {
                        let (a, b) = (col_of_edge[w[0]], col_of_edge[w[1]]);
                        let label =
                            if opts.labels { format!("ser in S{i} r{j}") } else { String::new() };
                        net.add_place(at(j, a), at(j, b), 0, label);
                    }
                    for w in outs.windows(2) {
                        let (a, b) = (col_of_edge[w[0]], col_of_edge[w[1]]);
                        let label =
                            if opts.labels { format!("ser out S{i} r{j}") } else { String::new() };
                        net.add_place(at(j, a), at(j, b), 0, label);
                    }
                }
                // Last operation of the processor in a row, first in the next.
                let last_col = outs.last().map_or(ci, |&e| col_of_edge[e]);
                let first_col = ins.first().map_or(ci, |&e| col_of_edge[e]);
                for beta in 0..m_i {
                    let group: Vec<usize> = (beta..rows).step_by(m_i).collect();
                    circuit(net, &group, last_col, first_col, &format!("proc S{i}#{beta}"));
                }
            }
        }
    }

    Ok((rows, cols))
}

/// Re-times a net previously produced by [`build_tpn_view_into`] for a
/// **shape-preserving** mapping change, instead of clearing and rebuilding
/// it: recomputes every transition's firing time from `view` (the same
/// expressions the builder uses, so values are bit-identical to a fresh
/// build) and patches them in place, appending the ids of transitions
/// whose time actually changed to `changed` (cleared first).
///
/// A mapping change preserves the TPN shape iff the communication model,
/// every per-stage replica count `m_i`, and the workflow's edge set are
/// unchanged — the place structure (dataflow + round-robin circuits)
/// depends only on those, so swapping which processors occupy the slots
/// only re-times transitions. The caller
/// ([`crate::engine::PeriodEngine`]) is responsible for that check; this
/// function `debug_assert`s the grid dimensions. Labels (if any) are left
/// stale — only patch label-free nets.
pub fn retime_tpn_into(
    view: InstanceView<'_>,
    net: &mut TimedEventGraph,
    changed: &mut Vec<TransitionId>,
) {
    changed.clear();
    let wf = view.pipeline;
    let n = view.num_stages();
    let cols = n + wf.num_edges();
    let rows = net.num_transitions() / cols;
    debug_assert_eq!(rows * cols, net.num_transitions(), "net is not a {cols}-column grid");
    for j in 0..rows {
        let mut c = 0;
        let mut patch = |net: &mut TimedEventGraph, time: f64| {
            let t = grid_transition(cols, j, c);
            c += 1;
            let old = net.patch(t, time);
            if old.to_bits() != time.to_bits() {
                changed.push(t);
            }
        };
        for i in 0..n {
            let u = view.mapping.procs(i)[j % view.mapping.replicas(i)];
            patch(net, view.comp_time(i, u));
            for &e in wf.out_edges(i) {
                let (_, dst) = wf.edge(e);
                let v = view.mapping.procs(dst)[j % view.mapping.replicas(dst)];
                patch(net, view.comm_time(e, u, v));
            }
        }
    }
}

/// Computes the row-major firing-time vector of the TPN grid of `view`
/// **without building a net**: `out[j·cols + c]` is the firing time
/// [`build_tpn_view_into`] would give transition `(j, c)` of a
/// `rows × (n+E)` grid — the same expressions in the same order, so the
/// values are bit-identical to a fresh build. This is the per-instance
/// staging primitive of the shape-batched campaign path
/// ([`crate::batch::ShapeBatchSolver`]): same-shape instances share one
/// built net (the place structure) and differ only in these times.
pub fn transition_times_into(view: InstanceView<'_>, rows: usize, out: &mut Vec<f64>) {
    let wf = view.pipeline;
    let n = view.num_stages();
    let cols = n + wf.num_edges();
    out.clear();
    out.reserve(rows * cols);
    for j in 0..rows {
        for i in 0..n {
            let u = view.mapping.procs(i)[j % view.mapping.replicas(i)];
            out.push(view.comp_time(i, u));
            for &e in wf.out_edges(i) {
                let (_, dst) = wf.edge(e);
                let v = view.mapping.procs(dst)[j % view.mapping.replicas(dst)];
                out.push(view.comm_time(e, u, v));
            }
        }
    }
}

/// Builds only the sub-TPN of the transfer on edge `e` under the overlap
/// model (the restriction of the full TPN to that edge's column): `m`
/// transfer transitions with the sender and receiver round-robin
/// circuits. This is the object of the paper's Figures 9 and 10 and of
/// the Theorem 1 decomposition (on a chain, edge `i` is file `F_i`).
pub fn comm_sub_tpn(inst: &Instance, e: usize, opts: &BuildOptions) -> Result<BuiltTpn, BuildError> {
    assert!(e < inst.pipeline.num_edges(), "edge {e} out of range");
    let (src, dst) = inst.pipeline.edge(e);
    let m = instance_num_paths(inst).ok_or(BuildError::PathCountOverflow)?;
    if m > opts.max_transitions as u128 {
        return Err(BuildError::TooLarge { m, transitions: m, cap: opts.max_transitions });
    }
    let rows = m as usize;
    let m_i = inst.mapping.replicas(src);
    let m_next = inst.mapping.replicas(dst);
    let mut net = TimedEventGraph::with_capacity(rows, 2 * rows);
    for j in 0..rows {
        let u = inst.mapping.procs(src)[j % m_i];
        let v = inst.mapping.procs(dst)[j % m_next];
        let label = if opts.labels { format!("F{e}:P{u}>P{v} r{j}") } else { String::new() };
        net.add_transition(inst.comm_time(e, u, v), label);
    }
    let circuit = |net: &mut TimedEventGraph, group: &[usize], tag: &str| {
        for w in 0..group.len() {
            let (a, b) = (group[w], group[(w + 1) % group.len()]);
            let tokens = u32::from(w + 1 == group.len());
            let label = if opts.labels { format!("{tag} r{a}>r{b}") } else { String::new() };
            net.add_place(TransitionId(a as u32), TransitionId(b as u32), tokens, label);
        }
    };
    for alpha in 0..m_i {
        let group: Vec<usize> = (alpha..rows).step_by(m_i).collect();
        circuit(&mut net, &group, &format!("out#{alpha}"));
    }
    for beta in 0..m_next {
        let group: Vec<usize> = (beta..rows).step_by(m_next).collect();
        circuit(&mut net, &group, &format!("in#{beta}"));
    }
    Ok(BuiltTpn { net, rows, cols: 1 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};

    fn abc_instance(replicas: &[usize]) -> Instance {
        let n = replicas.len();
        let pipeline = Pipeline::new(vec![6.0; n], vec![3.0; n.saturating_sub(1)]).unwrap();
        let p: usize = replicas.iter().sum();
        let platform = Platform::uniform(p, 1.0, 1.0);
        let mut next = 0;
        let assignment: Vec<Vec<usize>> = replicas
            .iter()
            .map(|&m| {
                let v: Vec<usize> = (next..next + m).collect();
                next += m;
                v
            })
            .collect();
        Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
    }

    /// Diamond 0→{1,2}→3 with the given replica counts.
    fn diamond_instance(replicas: &[usize; 4]) -> Instance {
        let wf = crate::model::Workflow::from_edges(
            vec![6.0; 4],
            vec![(0, 1, 3.0), (0, 2, 3.0), (1, 3, 3.0), (2, 3, 3.0)],
        )
        .unwrap();
        let p: usize = replicas.iter().sum();
        let platform = Platform::uniform(p, 1.0, 1.0);
        let mut next = 0;
        let assignment: Vec<Vec<usize>> = replicas
            .iter()
            .map(|&m| {
                let v: Vec<usize> = (next..next + m).collect();
                next += m;
                v
            })
            .collect();
        Instance::new(wf, platform, Mapping::new(assignment).unwrap()).unwrap()
    }

    #[test]
    fn diamond_grid_dimensions() {
        let inst = diamond_instance(&[1, 2, 3, 1]);
        let built = build_tpn(&inst, CommModel::Overlap, &BuildOptions::default()).unwrap();
        assert_eq!(built.rows, 6); // lcm(1,2,3,1)
        assert_eq!(built.cols, 8); // n + E = 4 + 4
        assert_eq!(built.net.num_transitions(), 48);
    }

    #[test]
    fn diamond_place_counts_overlap() {
        // Dataflow: 2E per row. Circuits: one place per row per column
        // (stage columns: cpu; edge columns: out + in).
        let inst = diamond_instance(&[1, 2, 3, 1]);
        let built = build_tpn(&inst, CommModel::Overlap, &BuildOptions::default()).unwrap();
        let (m, n, e) = (6, 4, 4);
        assert_eq!(built.net.num_places(), m * 2 * e + n * m + e * 2 * m);
        // One token per circuit: Σ m_i + Σ_e (m_src + m_dst).
        assert_eq!(built.net.total_tokens(), (1 + 2 + 3 + 1) + (1 + 2) + (1 + 3) + (2 + 1) + (3 + 1));
    }

    #[test]
    fn diamond_place_counts_strict() {
        // Dataflow 2E·m, serialization 1·m at the fork and 1·m at the
        // join, proc circuits n·m.
        let inst = diamond_instance(&[1, 2, 3, 1]);
        let built = build_tpn(&inst, CommModel::Strict, &BuildOptions::default()).unwrap();
        let (m, n, e) = (6, 4, 4);
        assert_eq!(built.net.num_places(), m * 2 * e + 2 * m + n * m);
        assert_eq!(built.net.total_tokens(), 1 + 2 + 3 + 1);
    }

    #[test]
    fn diamond_no_sourceless_transitions() {
        let inst = diamond_instance(&[2, 3, 1, 2]);
        for model in [CommModel::Overlap, CommModel::Strict] {
            let built = build_tpn(&inst, model, &BuildOptions::default()).unwrap();
            assert!(built.net.lint().is_empty(), "{model}: {:?}", built.net.lint());
        }
    }

    #[test]
    fn diamond_transition_times_match_built_net_bitwise() {
        let inst = diamond_instance(&[1, 2, 3, 1]);
        let opts = BuildOptions { labels: false, ..Default::default() };
        for model in [CommModel::Overlap, CommModel::Strict] {
            let built = build_tpn(&inst, model, &opts).unwrap();
            let mut times = Vec::new();
            transition_times_into(inst.view(), built.rows, &mut times);
            assert_eq!(times.len(), built.net.num_transitions());
            for (i, t) in built.net.transitions().iter().enumerate() {
                assert_eq!(times[i].to_bits(), t.firing_time.to_bits(), "{model} t{i}");
            }
        }
    }

    #[test]
    fn grid_dimensions() {
        let inst = abc_instance(&[1, 2, 3, 1]);
        let built = build_tpn(&inst, CommModel::Overlap, &BuildOptions::default()).unwrap();
        assert_eq!(built.rows, 6);
        assert_eq!(built.cols, 7);
        assert_eq!(built.net.num_transitions(), 42);
    }

    #[test]
    fn place_counts_overlap() {
        // Row places: m(2n−2). Circuits: per column, one place per row:
        // compute columns n·m places, comm columns 2m each (out + in).
        let inst = abc_instance(&[1, 2, 3, 1]);
        let built = build_tpn(&inst, CommModel::Overlap, &BuildOptions::default()).unwrap();
        let (m, n) = (6, 4);
        let expected = m * (2 * n - 2) + n * m + (n - 1) * 2 * m;
        assert_eq!(built.net.num_places(), expected);
    }

    #[test]
    fn place_counts_strict() {
        // Row places m(2n−2) + one serialization place per row per stage.
        let inst = abc_instance(&[1, 2, 3, 1]);
        let built = build_tpn(&inst, CommModel::Strict, &BuildOptions::default()).unwrap();
        let (m, n) = (6, 4);
        assert_eq!(built.net.num_places(), m * (2 * n - 2) + n * m);
    }

    #[test]
    fn token_count_matches_circuits() {
        // One token per circuit. Overlap: Σ m_i (cpu) + Σ_{i<n-1} (m_i +
        // m_{i+1}) (ports). Strict: Σ m_i.
        let inst = abc_instance(&[1, 2, 3, 1]);
        let ov = build_tpn(&inst, CommModel::Overlap, &BuildOptions::default()).unwrap();
        assert_eq!(ov.net.total_tokens(), (1 + 2 + 3 + 1) + (1 + 2) + (2 + 3) + (3 + 1));
        let st = build_tpn(&inst, CommModel::Strict, &BuildOptions::default()).unwrap();
        assert_eq!(st.net.total_tokens(), 1 + 2 + 3 + 1);
    }

    #[test]
    fn no_sourceless_transitions() {
        let inst = abc_instance(&[2, 3]);
        for model in [CommModel::Overlap, CommModel::Strict] {
            let built = build_tpn(&inst, model, &BuildOptions::default()).unwrap();
            assert!(built.net.lint().is_empty(), "{model}: {:?}", built.net.lint());
        }
    }

    #[test]
    fn single_stage_pipeline() {
        let inst = abc_instance(&[3]);
        let built = build_tpn(&inst, CommModel::Overlap, &BuildOptions::default()).unwrap();
        assert_eq!(built.cols, 1);
        assert_eq!(built.rows, 3);
        // Three processors, each a tokenized self-loop.
        assert_eq!(built.net.num_places(), 3);
        assert_eq!(built.net.total_tokens(), 3);
    }

    #[test]
    fn cap_enforced() {
        let inst = abc_instance(&[4, 5, 7, 9]); // m = 1260, transitions = 8820
        let opts = BuildOptions { labels: false, max_transitions: 100 };
        match build_tpn(&inst, CommModel::Overlap, &opts) {
            Err(BuildError::TooLarge { m, .. }) => assert_eq!(m, 1260),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn grid_round_trip() {
        let inst = abc_instance(&[1, 2]);
        let built = build_tpn(&inst, CommModel::Overlap, &BuildOptions::default()).unwrap();
        for j in 0..built.rows {
            for c in 0..built.cols {
                assert_eq!(built.pos(built.at(j, c)), (j, c));
            }
        }
    }

    #[test]
    fn sub_tpn_shape() {
        let inst = abc_instance(&[2, 3]);
        let sub = comm_sub_tpn(&inst, 0, &BuildOptions::default()).unwrap();
        assert_eq!(sub.net.num_transitions(), 6);
        // 6 sender-circuit places + 6 receiver-circuit places.
        assert_eq!(sub.net.num_places(), 12);
        assert_eq!(sub.net.total_tokens(), 5); // 2 sender + 3 receiver circuits
    }

    #[test]
    fn transition_times_match_built_net_bitwise() {
        let inst = abc_instance(&[1, 2, 3, 1]);
        let opts = BuildOptions { labels: false, ..Default::default() };
        for model in [CommModel::Overlap, CommModel::Strict] {
            let built = build_tpn(&inst, model, &opts).unwrap();
            let mut times = Vec::new();
            transition_times_into(inst.view(), built.rows, &mut times);
            assert_eq!(times.len(), built.net.num_transitions());
            for (i, t) in built.net.transitions().iter().enumerate() {
                assert_eq!(times[i].to_bits(), t.firing_time.to_bits(), "{model} t{i}");
            }
        }
    }

    #[test]
    fn labels_can_be_disabled() {
        let inst = abc_instance(&[1, 2]);
        let opts = BuildOptions { labels: false, ..Default::default() };
        let built = build_tpn(&inst, CommModel::Overlap, &opts).unwrap();
        assert!(built.net.transitions().iter().all(|t| t.label.is_empty()));
    }
}
