//! The unified period-computation API.
//!
//! Every method returns the **per-data-set period** `P̂` (the paper reports
//! all its numbers in this normalization; the raw TPN critical-cycle ratio
//! is `m·P̂` since all `m` rows complete per TPN period).

use crate::cycle_time::max_cycle_time;
use crate::model::{CommModel, Instance};
use crate::overlap_poly::{overlap_period, Bottleneck};
use crate::paths::instance_num_paths;
use crate::tpn_build::{build_tpn, BuildError, BuildOptions};
use std::fmt;
use tpn::analysis::AnalysisError;

/// How to compute the period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Pick automatically: `M_ct` fast path for one-to-one mappings, the
    /// Theorem 1 polynomial algorithm for the overlap model, the full TPN
    /// for the strict model.
    #[default]
    Auto,
    /// Build the full `m × (2n−1)` TPN and run Howard's iteration. Exact
    /// for both models; cost grows with `m = lcm(m_0,…,m_{n−1})`.
    FullTpn,
    /// Theorem 1 polynomial algorithm. **Overlap model only.**
    Polynomial,
    /// Earliest-firing simulation of the full TPN, estimating the period
    /// from the asymptotic schedule. Exact analysis cross-check.
    TpnSimulation,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Auto => write!(f, "auto"),
            Method::FullTpn => write!(f, "full-tpn"),
            Method::Polynomial => write!(f, "polynomial"),
            Method::TpnSimulation => write!(f, "tpn-simulation"),
        }
    }
}

/// Result of a period computation.
#[derive(Debug, Clone)]
pub struct PeriodReport {
    /// Per-data-set period `P̂` (inverse of the throughput).
    pub period: f64,
    /// Maximum resource cycle-time `M_ct` (per data set) — always ≤ `period`.
    pub mct: f64,
    /// Communication model analyzed.
    pub model: CommModel,
    /// Method actually used (after `Auto` resolution).
    pub method: Method,
    /// Number of distinct data-set paths `m` (TPN row count).
    pub num_paths: u128,
    /// Human-readable description of the critical resource / circuit.
    pub critical: String,
}

impl PeriodReport {
    /// Throughput `ρ = 1/P̂` in data sets per time unit.
    pub fn throughput(&self) -> f64 {
        1.0 / self.period
    }

    /// True iff some resource is critical: the period equals `M_ct` (within
    /// `rel_tol`). When false the mapping exhibits the paper's surprising
    /// regime where *every* resource idles during each period.
    pub fn has_critical_resource(&self, rel_tol: f64) -> bool {
        self.period - self.mct <= rel_tol * self.mct.abs().max(f64::MIN_POSITIVE)
    }
}

/// Errors from [`compute_period`].
#[derive(Debug, Clone, PartialEq)]
pub enum PeriodError {
    /// TPN construction failed (too large / overflow).
    Build(BuildError),
    /// TPN analysis failed (deadlock cannot happen for well-formed
    /// mappings; numeric trouble is reported).
    Analysis(String),
    /// [`Method::Polynomial`] requested for the strict model, which has no
    /// known polynomial algorithm (open problem per the paper).
    PolynomialNeedsOverlap,
}

impl fmt::Display for PeriodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeriodError::Build(e) => write!(f, "{e}"),
            PeriodError::Analysis(e) => write!(f, "{e}"),
            PeriodError::PolynomialNeedsOverlap => {
                write!(f, "the polynomial method only applies to the overlap one-port model")
            }
        }
    }
}

impl std::error::Error for PeriodError {}

impl From<BuildError> for PeriodError {
    fn from(e: BuildError) -> Self {
        PeriodError::Build(e)
    }
}

impl From<AnalysisError> for PeriodError {
    fn from(e: AnalysisError) -> Self {
        PeriodError::Analysis(e.to_string())
    }
}

/// Computes the per-data-set period of a mapped workflow.
pub fn compute_period(inst: &Instance, model: CommModel, method: Method) -> Result<PeriodReport, PeriodError> {
    compute_period_with(inst, model, method, &BuildOptions { labels: false, ..Default::default() })
}

/// [`compute_period`] with explicit TPN build options (labels, size cap).
pub fn compute_period_with(
    inst: &Instance,
    model: CommModel,
    method: Method,
    opts: &BuildOptions,
) -> Result<PeriodReport, PeriodError> {
    let (mct, who) = max_cycle_time(inst, model);
    let m = instance_num_paths(inst).ok_or(BuildError::PathCountOverflow)?;

    let resolved = match method {
        Method::Auto => {
            if inst.mapping.is_one_to_one() {
                // No replication: the period is dictated by the critical
                // resource (§2 of the paper; also [3]).
                return Ok(PeriodReport {
                    period: mct,
                    mct,
                    model,
                    method: Method::Auto,
                    num_paths: 1,
                    critical: format!("P{} (S{})", who.proc, who.stage),
                });
            }
            match model {
                CommModel::Overlap => Method::Polynomial,
                CommModel::Strict => Method::FullTpn,
            }
        }
        m => m,
    };

    match resolved {
        Method::Polynomial => {
            if model != CommModel::Overlap {
                return Err(PeriodError::PolynomialNeedsOverlap);
            }
            let a = overlap_period(inst);
            let critical = match &a.bottleneck {
                Bottleneck::Computation { stage, proc } => format!("computation S{stage} on P{proc}"),
                Bottleneck::Communication { file, residue, .. } => {
                    format!("transfer of F{file}, component {residue}")
                }
            };
            Ok(PeriodReport {
                period: a.period,
                mct,
                model,
                method: Method::Polynomial,
                num_paths: m,
                critical,
            })
        }
        Method::FullTpn => {
            let built = build_tpn(inst, model, opts)?;
            let sol = tpn::analysis::period(&built.net)?
                .expect("mapping TPNs always contain circuits");
            let critical = if opts.labels {
                let names: Vec<&str> = sol
                    .critical
                    .iter()
                    .take(8)
                    .map(|&t| built.net.transition(t).label.as_str())
                    .collect();
                format!("cycle[{}]: {}", sol.critical.len(), names.join(" -> "))
            } else {
                format!("cycle of {} transitions", sol.critical.len())
            };
            Ok(PeriodReport {
                period: sol.period / m as f64,
                mct,
                model,
                method: Method::FullTpn,
                num_paths: m,
                critical,
            })
        }
        Method::TpnSimulation => {
            let built = build_tpn(inst, model, opts)?;
            // Enough firings to leave the transient: the transient of a TEG
            // is bounded in practice by a few multiples of the row count.
            let k = 12 * built.rows.max(8) + 256;
            let schedule = tpn::sim::simulate(&built.net, k);
            // Each last-column transition fires once per local period; in a
            // net whose round-robin structure decouples into components the
            // components free-run at different rates, and the sustainable
            // period is the slowest — take the max over rows.
            let window = k / 2;
            let lambda = (0..built.rows)
                .map(|r| {
                    let t = built.at(r, built.cols - 1);
                    schedule.period_estimate(t.0 as usize, window)
                })
                .fold(0.0f64, f64::max);
            Ok(PeriodReport {
                period: lambda / m as f64,
                mct,
                model,
                method: Method::TpnSimulation,
                num_paths: m,
                critical: "estimated from simulated schedule".to_string(),
            })
        }
        Method::Auto => unreachable!("Auto resolved above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};

    fn inst(replicas: &[usize], work: f64, file: f64) -> Instance {
        let n = replicas.len();
        let pipeline = Pipeline::new(vec![work; n], vec![file; n - 1]).unwrap();
        let p: usize = replicas.iter().sum();
        let platform = Platform::uniform(p, 1.0, 1.0);
        let mut next = 0;
        let assignment: Vec<Vec<usize>> = replicas
            .iter()
            .map(|&m| {
                let procs: Vec<usize> = (next..next + m).collect();
                next += m;
                procs
            })
            .collect();
        Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
    }

    #[test]
    fn one_to_one_fast_path() {
        let i = inst(&[1, 1], 4.0, 9.0);
        for model in [CommModel::Overlap, CommModel::Strict] {
            let r = compute_period(&i, model, Method::Auto).unwrap();
            assert!(r.has_critical_resource(1e-9));
            let expected = match model {
                CommModel::Overlap => 9.0,       // max(4, 9)
                CommModel::Strict => 4.0 + 9.0,  // sender: comp + send
            };
            assert!((r.period - expected).abs() < 1e-12, "{model}: {}", r.period);
        }
    }

    #[test]
    fn methods_agree_overlap() {
        let i = inst(&[2, 3], 5.0, 4.0);
        let poly = compute_period(&i, CommModel::Overlap, Method::Polynomial).unwrap();
        let full = compute_period(&i, CommModel::Overlap, Method::FullTpn).unwrap();
        let sim = compute_period(&i, CommModel::Overlap, Method::TpnSimulation).unwrap();
        assert!((poly.period - full.period).abs() < 1e-9, "{} vs {}", poly.period, full.period);
        assert!((poly.period - sim.period).abs() < 1e-6, "{} vs {}", poly.period, sim.period);
    }

    #[test]
    fn strict_full_tpn_runs() {
        let i = inst(&[2, 3], 5.0, 4.0);
        let full = compute_period(&i, CommModel::Strict, Method::FullTpn).unwrap();
        let sim = compute_period(&i, CommModel::Strict, Method::TpnSimulation).unwrap();
        assert!(full.period >= full.mct - 1e-9);
        assert!((full.period - sim.period).abs() < 1e-6, "{} vs {}", full.period, sim.period);
    }

    #[test]
    fn polynomial_rejects_strict() {
        let i = inst(&[2, 2], 1.0, 1.0);
        assert!(matches!(
            compute_period(&i, CommModel::Strict, Method::Polynomial),
            Err(PeriodError::PolynomialNeedsOverlap)
        ));
    }

    #[test]
    fn strict_at_least_overlap() {
        // The strict model serializes more: its period can never beat the
        // overlap model on the same instance.
        let i = inst(&[2, 3, 2], 3.0, 2.0);
        let ov = compute_period(&i, CommModel::Overlap, Method::Auto).unwrap();
        let st = compute_period(&i, CommModel::Strict, Method::Auto).unwrap();
        assert!(st.period >= ov.period - 1e-9);
    }

    #[test]
    fn throughput_is_inverse() {
        let i = inst(&[1, 2], 4.0, 1.0);
        let r = compute_period(&i, CommModel::Overlap, Method::Auto).unwrap();
        assert!((r.throughput() * r.period - 1.0).abs() < 1e-12);
    }
}
