//! The unified period-computation API.
//!
//! Every method returns the **per-data-set period** `P̂` (the paper reports
//! all its numbers in this normalization; the raw TPN critical-cycle ratio
//! is `m·P̂` since all `m` rows complete per TPN period).

use crate::model::{CommModel, Instance, ModelError};
use crate::tpn_build::{BuildError, BuildOptions};
use std::fmt;
use tpn::analysis::AnalysisError;

/// How to compute the period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Pick automatically: `M_ct` fast path for one-to-one mappings, the
    /// Theorem 1 polynomial algorithm for the overlap model, the full TPN
    /// for the strict model.
    #[default]
    Auto,
    /// Build the full `m × (2n−1)` TPN and run Howard's iteration. Exact
    /// for both models; cost grows with `m = lcm(m_0,…,m_{n−1})`.
    FullTpn,
    /// Theorem 1 polynomial algorithm. **Overlap model only.**
    Polynomial,
    /// Earliest-firing simulation of the full TPN, estimating the period
    /// from the asymptotic schedule. Exact analysis cross-check.
    TpnSimulation,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Method::Auto => write!(f, "auto"),
            Method::FullTpn => write!(f, "full-tpn"),
            Method::Polynomial => write!(f, "polynomial"),
            Method::TpnSimulation => write!(f, "tpn-simulation"),
        }
    }
}

/// Result of a period computation.
#[derive(Debug, Clone)]
pub struct PeriodReport {
    /// Per-data-set period `P̂` (inverse of the throughput).
    pub period: f64,
    /// Maximum resource cycle-time `M_ct` (per data set) — always ≤ `period`.
    pub mct: f64,
    /// Communication model analyzed.
    pub model: CommModel,
    /// Method actually used (after `Auto` resolution).
    pub method: Method,
    /// Number of distinct data-set paths `m` (TPN row count).
    pub num_paths: u128,
    /// Human-readable description of the critical resource / circuit.
    pub critical: String,
}

impl PeriodReport {
    /// Throughput `ρ = 1/P̂` in data sets per time unit.
    pub fn throughput(&self) -> f64 {
        1.0 / self.period
    }

    /// True iff some resource is critical: the period equals `M_ct` (within
    /// `rel_tol`). When false the mapping exhibits the paper's surprising
    /// regime where *every* resource idles during each period.
    pub fn has_critical_resource(&self, rel_tol: f64) -> bool {
        self.period - self.mct <= rel_tol * self.mct.abs().max(f64::MIN_POSITIVE)
    }
}

/// Errors from [`compute_period`].
#[derive(Debug, Clone, PartialEq)]
pub enum PeriodError {
    /// The (pipeline, platform, mapping) triple failed validation — only
    /// produced by the mapping-oracle entry points
    /// ([`crate::engine::PeriodEngine::compute_mapping`],
    /// [`crate::engine::MappingOracle`]), which validate candidates
    /// instead of requiring a pre-validated [`Instance`].
    Model(ModelError),
    /// TPN construction failed (too large / overflow).
    Build(BuildError),
    /// TPN analysis failed (deadlock cannot happen for well-formed
    /// mappings; numeric trouble is reported).
    Analysis(String),
    /// [`Method::Polynomial`] requested for the strict model, which has no
    /// known polynomial algorithm (open problem per the paper).
    PolynomialNeedsOverlap,
}

impl fmt::Display for PeriodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeriodError::Model(e) => write!(f, "{e}"),
            PeriodError::Build(e) => write!(f, "{e}"),
            PeriodError::Analysis(e) => write!(f, "{e}"),
            PeriodError::PolynomialNeedsOverlap => {
                write!(f, "the polynomial method only applies to the overlap one-port model")
            }
        }
    }
}

impl std::error::Error for PeriodError {}

impl From<BuildError> for PeriodError {
    fn from(e: BuildError) -> Self {
        PeriodError::Build(e)
    }
}

impl From<ModelError> for PeriodError {
    fn from(e: ModelError) -> Self {
        PeriodError::Model(e)
    }
}

impl From<AnalysisError> for PeriodError {
    fn from(e: AnalysisError) -> Self {
        PeriodError::Analysis(e.to_string())
    }
}

/// Computes the per-data-set period of a mapped workflow.
pub fn compute_period(inst: &Instance, model: CommModel, method: Method) -> Result<PeriodReport, PeriodError> {
    compute_period_with(inst, model, method, &BuildOptions { labels: false, ..Default::default() })
}

/// [`compute_period`] with explicit TPN build options (labels, size cap).
///
/// One-shot convenience: builds a fresh [`crate::engine::PeriodEngine`]
/// per call. Hot loops (campaigns, mapping searches) should hold an engine
/// and reuse it — same results, no per-call allocation.
pub fn compute_period_with(
    inst: &Instance,
    model: CommModel,
    method: Method,
    opts: &BuildOptions,
) -> Result<PeriodReport, PeriodError> {
    crate::engine::PeriodEngine::with_options(opts.clone()).compute(inst, model, method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};

    fn inst(replicas: &[usize], work: f64, file: f64) -> Instance {
        let n = replicas.len();
        let pipeline = Pipeline::new(vec![work; n], vec![file; n - 1]).unwrap();
        let p: usize = replicas.iter().sum();
        let platform = Platform::uniform(p, 1.0, 1.0);
        let mut next = 0;
        let assignment: Vec<Vec<usize>> = replicas
            .iter()
            .map(|&m| {
                let procs: Vec<usize> = (next..next + m).collect();
                next += m;
                procs
            })
            .collect();
        Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
    }

    #[test]
    fn one_to_one_fast_path() {
        let i = inst(&[1, 1], 4.0, 9.0);
        for model in [CommModel::Overlap, CommModel::Strict] {
            let r = compute_period(&i, model, Method::Auto).unwrap();
            assert!(r.has_critical_resource(1e-9));
            let expected = match model {
                CommModel::Overlap => 9.0,       // max(4, 9)
                CommModel::Strict => 4.0 + 9.0,  // sender: comp + send
            };
            assert!((r.period - expected).abs() < 1e-12, "{model}: {}", r.period);
        }
    }

    #[test]
    fn methods_agree_overlap() {
        let i = inst(&[2, 3], 5.0, 4.0);
        let poly = compute_period(&i, CommModel::Overlap, Method::Polynomial).unwrap();
        let full = compute_period(&i, CommModel::Overlap, Method::FullTpn).unwrap();
        let sim = compute_period(&i, CommModel::Overlap, Method::TpnSimulation).unwrap();
        assert!((poly.period - full.period).abs() < 1e-9, "{} vs {}", poly.period, full.period);
        assert!((poly.period - sim.period).abs() < 1e-6, "{} vs {}", poly.period, sim.period);
    }

    #[test]
    fn strict_full_tpn_runs() {
        let i = inst(&[2, 3], 5.0, 4.0);
        let full = compute_period(&i, CommModel::Strict, Method::FullTpn).unwrap();
        let sim = compute_period(&i, CommModel::Strict, Method::TpnSimulation).unwrap();
        assert!(full.period >= full.mct - 1e-9);
        assert!((full.period - sim.period).abs() < 1e-6, "{} vs {}", full.period, sim.period);
    }

    #[test]
    fn polynomial_rejects_strict() {
        let i = inst(&[2, 2], 1.0, 1.0);
        assert!(matches!(
            compute_period(&i, CommModel::Strict, Method::Polynomial),
            Err(PeriodError::PolynomialNeedsOverlap)
        ));
    }

    #[test]
    fn strict_at_least_overlap() {
        // The strict model serializes more: its period can never beat the
        // overlap model on the same instance.
        let i = inst(&[2, 3, 2], 3.0, 2.0);
        let ov = compute_period(&i, CommModel::Overlap, Method::Auto).unwrap();
        let st = compute_period(&i, CommModel::Strict, Method::Auto).unwrap();
        assert!(st.period >= ov.period - 1e-9);
    }

    #[test]
    fn throughput_is_inverse() {
        let i = inst(&[1, 2], 4.0, 1.0);
        let r = compute_period(&i, CommModel::Overlap, Method::Auto).unwrap();
        assert!((r.throughput() * r.period - 1.0).abs() < 1e-12);
    }
}
