//! The zero-allocation period engine.
//!
//! Every headline experiment of the paper — the Table 2 campaigns, the gap
//! studies, annealing over mapping space — reduces to evaluating the
//! max-plus period of thousands of slightly-different event graphs. The
//! free-function API ([`crate::period::compute_period`]) pays full
//! construction cost each time: a fresh TPN (transitions, places, labels),
//! a fresh cycle-ratio graph, fresh Tarjan/Howard scratch. A
//! [`PeriodEngine`] owns all of that as arenas:
//!
//! * the **TPN build arena** — one [`TimedEventGraph`] cleared and rebuilt
//!   in place per call ([`crate::tpn_build::build_tpn_into`]);
//! * the **solver scratch** — a [`tpn::analysis::PeriodScratch`] holding
//!   the ratio-graph edge buffer and the `maxplus::Workspace` (CSR
//!   adjacency, SCC arrays, Howard policy/value vectors);
//!
//! so a `compute` call is allocation-free once the buffers have grown to
//! the largest instance seen (modulo labels, if enabled, and the witness
//! description in the report).
//!
//! # Warm starts
//!
//! With [`PeriodEngine::warm_start`] enabled, Howard's policy iteration is
//! seeded with the converged policy of the *previous* solve whenever the
//! graph shape matches — which is exactly what happens when a mapping
//! search evaluates neighbor mappings of the same shape, where typically
//! only edge costs change. Warm starts change the search path, not the
//! reported period (recomputed exactly from the witness circuit; on
//! eps-level ties between distinct critical circuits — measure zero for
//! generic costs — the reported witness, and hence the last bits of the
//! ratio, may come from the other member of the tie).
//!
//! Warm starts are deliberately **off by default**: the campaign engine
//! keeps one engine per worker thread, and with warm starts the *witness
//! circuit* (not the period) could depend on which experiment a worker ran
//! previously, i.e. on the work-stealing schedule. Cold-per-call engines
//! keep every output a pure function of the experiment seed, preserving
//! the bit-identical-at-any-thread-count guarantee. Sequential searches
//! (`repwf_map::local_search`, `repwf_map::annealing`) enable warm starts.

use crate::cycle_time::max_cycle_time;
use crate::model::{CommModel, Instance};
use crate::overlap_poly::{overlap_period, Bottleneck};
use crate::paths::instance_num_paths;
use crate::period::{Method, PeriodError, PeriodReport};
use crate::tpn_build::{build_tpn_into, grid_transition, BuildError, BuildOptions};
use tpn::analysis::PeriodScratch;
use tpn::net::TimedEventGraph;

/// Reusable period solver: owns the TPN build arena and the max-plus
/// workspace, and optionally warm-starts Howard's iteration across calls.
///
/// ```
/// use repwf_core::engine::PeriodEngine;
/// use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
/// use repwf_core::period::Method;
///
/// let pipeline = Pipeline::new(vec![10.0, 20.0], vec![4.0]).unwrap();
/// let platform = Platform::uniform(3, 1.0, 1.0);
/// let mapping = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
/// let inst = Instance::new(pipeline, platform, mapping).unwrap();
///
/// let mut engine = PeriodEngine::new();
/// for _ in 0..3 {
///     // Repeated evaluations reuse every internal buffer.
///     let r = engine.compute(&inst, CommModel::Strict, Method::FullTpn).unwrap();
///     assert!(r.period >= r.mct - 1e-9);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PeriodEngine {
    opts: BuildOptions,
    warm: bool,
    net: TimedEventGraph,
    scratch: PeriodScratch,
}

impl PeriodEngine {
    /// An engine with the hot-path defaults: no labels, default size cap,
    /// cold starts.
    pub fn new() -> Self {
        PeriodEngine {
            opts: BuildOptions { labels: false, ..BuildOptions::default() },
            ..PeriodEngine::default()
        }
    }

    /// An engine with explicit TPN build options (labels, size cap).
    pub fn with_options(opts: BuildOptions) -> Self {
        PeriodEngine { opts, ..PeriodEngine::default() }
    }

    /// Enables/disables warm-started policy iteration (builder-style).
    /// See the module docs for when this is safe to turn on.
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm = on;
        self
    }

    /// The TPN build options this engine applies.
    pub fn options(&self) -> &BuildOptions {
        &self.opts
    }

    /// Forgets the warm-start policy of the previous solve (the next call
    /// behaves like a cold one even when warm starts are enabled).
    pub fn reset_warm_start(&mut self) {
        self.scratch.clear_warm_start();
    }

    /// Computes the per-data-set period of a mapped workflow, reusing the
    /// engine's arenas. Results are identical to
    /// [`crate::period::compute_period_with`] with the same options.
    pub fn compute(
        &mut self,
        inst: &Instance,
        model: CommModel,
        method: Method,
    ) -> Result<PeriodReport, PeriodError> {
        let (mct, who) = max_cycle_time(inst, model);
        let m = instance_num_paths(inst).ok_or(BuildError::PathCountOverflow)?;

        let resolved = match method {
            Method::Auto => {
                if inst.mapping.is_one_to_one() {
                    // No replication: the period is dictated by the critical
                    // resource (§2 of the paper; also [3]).
                    return Ok(PeriodReport {
                        period: mct,
                        mct,
                        model,
                        method: Method::Auto,
                        num_paths: 1,
                        critical: format!("P{} (S{})", who.proc, who.stage),
                    });
                }
                match model {
                    CommModel::Overlap => Method::Polynomial,
                    CommModel::Strict => Method::FullTpn,
                }
            }
            m => m,
        };

        match resolved {
            Method::Polynomial => {
                if model != CommModel::Overlap {
                    return Err(PeriodError::PolynomialNeedsOverlap);
                }
                let a = overlap_period(inst);
                let critical = match &a.bottleneck {
                    Bottleneck::Computation { stage, proc } => {
                        format!("computation S{stage} on P{proc}")
                    }
                    Bottleneck::Communication { file, residue, .. } => {
                        format!("transfer of F{file}, component {residue}")
                    }
                };
                Ok(PeriodReport {
                    period: a.period,
                    mct,
                    model,
                    method: Method::Polynomial,
                    num_paths: m,
                    critical,
                })
            }
            Method::FullTpn => {
                build_tpn_into(inst, model, &self.opts, &mut self.net)?;
                let sol = tpn::analysis::period_with(&self.net, &mut self.scratch, self.warm)?
                    .expect("mapping TPNs always contain circuits");
                let critical = if self.opts.labels {
                    let names: Vec<&str> = sol
                        .critical
                        .iter()
                        .take(8)
                        .map(|&t| self.net.transition(t).label.as_str())
                        .collect();
                    format!("cycle[{}]: {}", sol.critical.len(), names.join(" -> "))
                } else {
                    format!("cycle of {} transitions", sol.critical.len())
                };
                Ok(PeriodReport {
                    period: sol.period / m as f64,
                    mct,
                    model,
                    method: Method::FullTpn,
                    num_paths: m,
                    critical,
                })
            }
            Method::TpnSimulation => {
                let (rows, cols) = build_tpn_into(inst, model, &self.opts, &mut self.net)?;
                // Enough firings to leave the transient: the transient of a
                // TEG is bounded in practice by a few multiples of the row
                // count.
                let k = 12 * rows.max(8) + 256;
                let schedule = tpn::sim::simulate(&self.net, k);
                // Each last-column transition fires once per local period;
                // in a net whose round-robin structure decouples into
                // components the components free-run at different rates,
                // and the sustainable period is the slowest — take the max
                // over rows.
                let window = k / 2;
                let lambda = (0..rows)
                    .map(|r| {
                        let t = grid_transition(cols, r, cols - 1);
                        schedule.period_estimate(t.0 as usize, window)
                    })
                    .fold(0.0f64, f64::max);
                Ok(PeriodReport {
                    period: lambda / m as f64,
                    mct,
                    model,
                    method: Method::TpnSimulation,
                    num_paths: m,
                    critical: "estimated from simulated schedule".to_string(),
                })
            }
            Method::Auto => unreachable!("Auto resolved above"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};
    use crate::period::compute_period_with;

    fn inst(replicas: &[usize], work: f64, file: f64) -> Instance {
        let n = replicas.len();
        let pipeline = Pipeline::new(vec![work; n], vec![file; n - 1]).unwrap();
        let p: usize = replicas.iter().sum();
        let platform = Platform::uniform(p, 1.0, 1.0);
        let mut next = 0;
        let assignment: Vec<Vec<usize>> = replicas
            .iter()
            .map(|&m| {
                let procs: Vec<usize> = (next..next + m).collect();
                next += m;
                procs
            })
            .collect();
        Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
    }

    #[test]
    fn engine_matches_free_function_bitwise() {
        let opts = BuildOptions { labels: false, ..BuildOptions::default() };
        let mut engine = PeriodEngine::with_options(opts.clone());
        for replicas in [&[2usize, 3][..], &[1, 2, 2], &[3, 2]] {
            let i = inst(replicas, 5.0, 4.0);
            for model in [CommModel::Overlap, CommModel::Strict] {
                for method in [Method::Auto, Method::FullTpn] {
                    let a = compute_period_with(&i, model, method, &opts).unwrap();
                    let b = engine.compute(&i, model, method).unwrap();
                    assert_eq!(a.period.to_bits(), b.period.to_bits(), "{model} {method}");
                    assert_eq!(a.mct.to_bits(), b.mct.to_bits());
                    assert_eq!(a.num_paths, b.num_paths);
                }
            }
        }
    }

    #[test]
    fn warm_engine_is_bit_identical_to_cold() {
        let mut cold = PeriodEngine::new();
        let mut warm = PeriodEngine::new().warm_start(true);
        // Same-shape instances with varying costs: the warm path actually
        // reuses the previous policy here.
        for k in 1..=6 {
            let i = inst(&[2, 3], 4.0 + k as f64, 3.0 + 0.5 * k as f64);
            let a = cold.compute(&i, CommModel::Strict, Method::FullTpn).unwrap();
            let b = warm.compute(&i, CommModel::Strict, Method::FullTpn).unwrap();
            assert_eq!(a.period.to_bits(), b.period.to_bits(), "k={k}");
        }
    }

    #[test]
    fn engine_reports_build_errors() {
        let i = inst(&[4, 5, 7, 9], 1.0, 1.0); // m = 1260
        let mut engine =
            PeriodEngine::with_options(BuildOptions { labels: false, max_transitions: 100 });
        match engine.compute(&i, CommModel::Strict, Method::FullTpn) {
            Err(PeriodError::Build(BuildError::TooLarge { m, .. })) => assert_eq!(m, 1260),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The engine stays usable after an error.
        let ok = inst(&[2, 3], 5.0, 4.0);
        assert!(engine.compute(&ok, CommModel::Strict, Method::FullTpn).is_ok());
    }

    #[test]
    fn simulation_method_matches_free_function() {
        let opts = BuildOptions { labels: false, ..BuildOptions::default() };
        let i = inst(&[2, 3], 5.0, 4.0);
        let mut engine = PeriodEngine::with_options(opts.clone());
        let a = compute_period_with(&i, CommModel::Strict, Method::TpnSimulation, &opts).unwrap();
        let b = engine.compute(&i, CommModel::Strict, Method::TpnSimulation).unwrap();
        assert_eq!(a.period.to_bits(), b.period.to_bits());
    }
}
