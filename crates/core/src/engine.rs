//! The zero-allocation period engine.
//!
//! Every headline experiment of the paper — the Table 2 campaigns, the gap
//! studies, annealing over mapping space — reduces to evaluating the
//! max-plus period of thousands of slightly-different event graphs. The
//! free-function API ([`crate::period::compute_period`]) pays full
//! construction cost each time: a fresh TPN (transitions, places, labels),
//! a fresh cycle-ratio graph, fresh Tarjan/Howard scratch. A
//! [`PeriodEngine`] owns all of that as arenas:
//!
//! * the **TPN build arena** — one [`TimedEventGraph`] cleared and rebuilt
//!   in place per call ([`crate::tpn_build::build_tpn_into`]);
//! * the **solver scratch** — a [`tpn::analysis::PeriodScratch`] holding
//!   the ratio-graph edge buffer and the `maxplus::Workspace` (CSR
//!   adjacency, SCC arrays, Howard policy/value vectors);
//!
//! so a `compute` call is allocation-free once the buffers have grown to
//! the largest instance seen (modulo labels, if enabled, and the witness
//! description in the report).
//!
//! # Borrowed instances and the mapping oracle
//!
//! Every evaluation path also exists on a **borrowed**
//! [`InstanceView`] ([`PeriodEngine::compute_view`]): a mapping search
//! never clones pipeline/platform/mapping into an owned [`Instance`] per
//! candidate. The session type for that use case is [`MappingOracle`]:
//! it borrows the pair once, precomputes the platform validity tables,
//! and evaluates candidate mappings by reference.
//!
//! # Incremental (patched) solves
//!
//! A neighbor mapping with **unchanged per-stage replica counts** (e.g. a
//! swap of two replica slots) produces a TPN with the identical place
//! structure — only firing times differ. The engine detects this
//! (label-free arenas only) and takes the patch path: re-time transitions
//! in place ([`crate::tpn_build::retime_tpn_into`]), re-weight the edges
//! of the cycle-ratio graph fed by the changed transitions
//! (`tpn::analysis::period_patched_with`), and re-solve — no TPN rebuild,
//! no ratio-graph rebuild. The solve itself is **shape-cached**: the
//! engine's shape signature is threaded down to the `maxplus::Workspace`
//! as a structure token, so a patched solve also skips the CSR
//! construction and Tarjan's condensation entirely (zero CSR builds, zero
//! Tarjan runs — asserted through [`PeriodEngine::csr_builds`] /
//! [`PeriodEngine::tarjan_runs`]) and jumps straight to warm Howard after
//! one cost sweep. The patched state is bit-for-bit what a rebuild would
//! produce, so results (and warm-started solver trajectories) are
//! identical to the cold path; this is pinned by the property tests in
//! `crates/core/tests/incremental_props.rs`. Changes that alter any
//! replica count (add/remove/move a replica) or the communication model
//! fall back to the full rebuild transparently, and any errored call
//! drops both the patch precondition and the cached condensation.
//!
//! On top of the solver, [`MappingOracle`] keeps the `M_ct` side
//! incremental too: a per-session [`MctCache`] caches per-stage
//! cycle-times and re-examines only the stages a candidate actually
//! changed (plus their round-robin partners), instead of rescanning every
//! mapped processor per oracle call.
//!
//! # Warm starts
//!
//! With [`PeriodEngine::warm_start`] enabled, Howard's policy iteration is
//! seeded with the converged policy of the *previous* solve whenever the
//! graph shape matches — which is exactly what happens when a mapping
//! search evaluates neighbor mappings of the same shape, where typically
//! only edge costs change. Warm starts change the search path, not the
//! reported period (recomputed exactly from the witness circuit; on
//! eps-level ties between distinct critical circuits — measure zero for
//! generic costs — the reported witness, and hence the last bits of the
//! ratio, may come from the other member of the tie).
//!
//! Warm starts are deliberately **off by default**: the campaign engine
//! keeps one engine per worker thread, and with warm starts the *witness
//! circuit* (not the period) could depend on which experiment a worker ran
//! previously, i.e. on the work-stealing schedule. Cold-per-call engines
//! keep every output a pure function of the experiment seed, preserving
//! the bit-identical-at-any-thread-count guarantee. Sequential searches
//! (`repwf_map::local_search`, `repwf_map::annealing`) enable warm starts.

use crate::cycle_time::{max_cycle_time_view, prefix_cycle_bound, MctCache};
use crate::model::{CommModel, Instance, InstanceView, Mapping, ModelError, Pipeline, Platform};
use crate::overlap_poly::{overlap_period_view, Bottleneck};
use crate::paths::mapping_num_paths;
use crate::period::{Method, PeriodError, PeriodReport};
use crate::tpn_build::{
    build_tpn_view_into, grid_transition, retime_tpn_into, BuildError, BuildOptions,
};
use tpn::analysis::PeriodScratch;
use tpn::net::{TimedEventGraph, TransitionId};

/// The shape of the TPN currently held in a [`PeriodEngine`]'s arena: the
/// place structure is a pure function of the communication model, the
/// per-stage replica counts and the workflow's edge set, so two mappings
/// with equal counts on the same precedence graph produce structurally
/// identical nets that differ only in firing times — the precondition for
/// the patch path. (On a chain the edge set is implied by the stage
/// count, so this is the historical model + replica-counts signature.)
#[derive(Debug, Clone, PartialEq)]
struct TpnShape {
    model: CommModel,
    replicas: Vec<usize>,
    edges: Vec<(u32, u32)>,
}

impl TpnShape {
    fn matches(&self, model: CommModel, view: InstanceView<'_>) -> bool {
        self.model == model
            && self.replicas.len() == view.mapping.num_stages()
            && self
                .replicas
                .iter()
                .zip(view.mapping.assignment())
                .all(|(&r, procs)| r == procs.len())
            && self.edges[..] == *view.pipeline.edges()
    }
}

/// Reusable period solver: owns the TPN build arena and the max-plus
/// workspace, and optionally warm-starts Howard's iteration across calls.
///
/// ```
/// use repwf_core::engine::PeriodEngine;
/// use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
/// use repwf_core::period::Method;
///
/// let pipeline = Pipeline::new(vec![10.0, 20.0], vec![4.0]).unwrap();
/// let platform = Platform::uniform(3, 1.0, 1.0);
/// let mapping = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
/// let inst = Instance::new(pipeline, platform, mapping).unwrap();
///
/// let mut engine = PeriodEngine::new();
/// for _ in 0..3 {
///     // Repeated evaluations reuse every internal buffer.
///     let r = engine.compute(&inst, CommModel::Strict, Method::FullTpn).unwrap();
///     assert!(r.period >= r.mct - 1e-9);
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PeriodEngine {
    opts: BuildOptions,
    warm: bool,
    net: TimedEventGraph,
    scratch: PeriodScratch,
    /// Shape of the (label-free) net held in `net`/`scratch`, when it is
    /// known to be patchable; `None` forces a full rebuild.
    shape: Option<TpnShape>,
    /// Reusable buffer of re-timed transition ids for the patch path.
    changed: Vec<TransitionId>,
    /// How many full-TPN solves took the incremental patch path.
    patched_solves: u64,
}

impl PeriodEngine {
    /// An engine with the hot-path defaults: no labels, default size cap,
    /// cold starts.
    pub fn new() -> Self {
        PeriodEngine {
            opts: BuildOptions { labels: false, ..BuildOptions::default() },
            ..PeriodEngine::default()
        }
    }

    /// An engine with explicit TPN build options (labels, size cap).
    pub fn with_options(opts: BuildOptions) -> Self {
        PeriodEngine { opts, ..PeriodEngine::default() }
    }

    /// Enables/disables warm-started policy iteration (builder-style).
    /// See the module docs for when this is safe to turn on.
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm = on;
        self
    }

    /// The TPN build options this engine applies.
    pub fn options(&self) -> &BuildOptions {
        &self.opts
    }

    /// Forgets the warm-start policy of the previous solve (the next call
    /// behaves like a cold one even when warm starts are enabled).
    pub fn reset_warm_start(&mut self) {
        self.scratch.clear_warm_start();
    }

    /// Number of full-TPN solves that took the incremental patch path
    /// (shape-preserving mapping change: firing times re-timed in place,
    /// cycle-ratio graph re-weighted, no rebuild). Diagnostics for tests
    /// and the tracked benchmark suite.
    pub fn patched_solves(&self) -> u64 {
        self.patched_solves
    }

    /// Number of CSR adjacency builds the solver workspace has performed.
    /// A shape-preserving patched solve performs **zero** — the structure
    /// cache serves the condensation of the last rebuild — so on a swap
    /// walk this stays at the number of rebuild solves. Diagnostics for
    /// tests and the tracked benchmark suite.
    pub fn csr_builds(&self) -> u64 {
        self.scratch.csr_builds()
    }

    /// Number of Tarjan condensation runs the solver workspace has
    /// performed (see [`PeriodEngine::csr_builds`]).
    pub fn tarjan_runs(&self) -> u64 {
        self.scratch.tarjan_runs()
    }

    /// Forgets the patch precondition: the next full-TPN solve rebuilds
    /// the arena net, the ratio graph and the condensation from scratch
    /// (results are unaffected — the patched state is always bit-for-bit a
    /// rebuild). Used by the tracked benches to price the rebuild path.
    pub fn reset_patch_state(&mut self) {
        self.shape = None;
    }

    /// Computes the per-data-set period of a mapped workflow, reusing the
    /// engine's arenas. Results are identical to
    /// [`crate::period::compute_period_with`] with the same options.
    pub fn compute(
        &mut self,
        inst: &Instance,
        model: CommModel,
        method: Method,
    ) -> Result<PeriodReport, PeriodError> {
        self.compute_view(inst.view(), model, method)
    }

    /// [`PeriodEngine::compute`] on a **borrowed** [`InstanceView`] — no
    /// owned `Instance` (and hence no pipeline/platform/mapping clone) is
    /// ever required. The view is trusted the same way `compute` trusts a
    /// validated `Instance`; use [`PeriodEngine::compute_mapping`] or a
    /// [`MappingOracle`] for unvalidated candidates.
    pub fn compute_view(
        &mut self,
        view: InstanceView<'_>,
        model: CommModel,
        method: Method,
    ) -> Result<PeriodReport, PeriodError> {
        self.compute_view_mct(view, model, method, None)
    }

    /// [`PeriodEngine::compute_view`] with an optional incremental
    /// [`MctCache`] (the [`MappingOracle`] owns one per session). Any
    /// errored call — build failure, solver failure, method mismatch —
    /// forgets the patch precondition, so the next solve rebuilds cold.
    fn compute_view_mct(
        &mut self,
        view: InstanceView<'_>,
        model: CommModel,
        method: Method,
        mct_cache: Option<&mut MctCache>,
    ) -> Result<PeriodReport, PeriodError> {
        let res = self.compute_view_impl(view, model, method, mct_cache);
        if res.is_err() {
            self.shape = None;
        }
        res
    }

    fn compute_view_impl(
        &mut self,
        view: InstanceView<'_>,
        model: CommModel,
        method: Method,
        mct_cache: Option<&mut MctCache>,
    ) -> Result<PeriodReport, PeriodError> {
        let (mct, who) = {
            let _span = repwf_obs::span!(Mct);
            match mct_cache {
                Some(cache) => cache.max_cycle_time(view, model),
                None => max_cycle_time_view(view, model),
            }
        };
        let m = mapping_num_paths(view.mapping).ok_or(BuildError::PathCountOverflow)?;

        let resolved = match method {
            Method::Auto => {
                if view.mapping.is_one_to_one() {
                    // No replication: the period is dictated by the critical
                    // resource (§2 of the paper; also [3]).
                    return Ok(PeriodReport {
                        period: mct,
                        mct,
                        model,
                        method: Method::Auto,
                        num_paths: 1,
                        critical: format!("P{} (S{})", who.proc, who.stage),
                    });
                }
                match model {
                    CommModel::Overlap => Method::Polynomial,
                    CommModel::Strict => Method::FullTpn,
                }
            }
            m => m,
        };

        match resolved {
            Method::Polynomial => {
                if model != CommModel::Overlap {
                    return Err(PeriodError::PolynomialNeedsOverlap);
                }
                let a = overlap_period_view(view);
                let critical = match &a.bottleneck {
                    Bottleneck::Computation { stage, proc } => {
                        format!("computation S{stage} on P{proc}")
                    }
                    Bottleneck::Communication { file, residue, .. } => {
                        format!("transfer of F{file}, component {residue}")
                    }
                };
                Ok(PeriodReport {
                    period: a.period,
                    mct,
                    model,
                    method: Method::Polynomial,
                    num_paths: m,
                    critical,
                })
            }
            Method::FullTpn => {
                // Shape-preserving change (same model, same per-stage
                // replica counts, label-free arena): patch firing times and
                // re-weight the cycle-ratio graph in place instead of
                // clearing and rebuilding both. The patched state is
                // bit-for-bit what a rebuild would produce, so results —
                // including warm-started solver trajectories — are
                // identical to the cold path.
                let patchable = !self.opts.labels
                    && self.shape.as_ref().is_some_and(|s| s.matches(model, view));
                let solved = if patchable {
                    self.patched_solves += 1;
                    repwf_obs::counter_add(repwf_obs::CounterId::PatchedSolves, 1);
                    {
                        let _span = repwf_obs::span!(Retime);
                        retime_tpn_into(view, &mut self.net, &mut self.changed);
                    }
                    repwf_obs::counter_add(repwf_obs::CounterId::Retimes, 1);
                    tpn::analysis::period_patched_with(
                        &self.net,
                        &mut self.scratch,
                        self.warm,
                        &self.changed,
                    )
                } else {
                    // Reuse the previous shape's buffers for the new
                    // signature (the take also drops the stale patch
                    // precondition before the arena is overwritten).
                    let (mut replicas, mut edges) = self
                        .shape
                        .take()
                        .map(|s| (s.replicas, s.edges))
                        .unwrap_or_default();
                    {
                        let _span = repwf_obs::span!(TpnBuild);
                        build_tpn_view_into(view, model, &self.opts, &mut self.net)?;
                    }
                    repwf_obs::counter_add(repwf_obs::CounterId::TpnBuilds, 1);
                    let res = tpn::analysis::period_with(&self.net, &mut self.scratch, self.warm);
                    if res.is_ok() && !self.opts.labels {
                        view.mapping.replica_counts_into(&mut replicas);
                        edges.clear();
                        edges.extend_from_slice(view.pipeline.edges());
                        self.shape = Some(TpnShape { model, replicas, edges });
                    }
                    res
                };
                // On error `compute_view_mct` forgets the patch state (and
                // the workspace already dropped its structure cache).
                let sol = solved.map_err(PeriodError::from)?
                    .expect("mapping TPNs always contain circuits");
                let critical = if self.opts.labels {
                    let names: Vec<&str> = sol
                        .critical
                        .iter()
                        .take(8)
                        .map(|&t| self.net.transition(t).label.as_str())
                        .collect();
                    format!("cycle[{}]: {}", sol.critical.len(), names.join(" -> "))
                } else {
                    format!("cycle of {} transitions", sol.critical.len())
                };
                Ok(PeriodReport {
                    period: sol.period / m as f64,
                    mct,
                    model,
                    method: Method::FullTpn,
                    num_paths: m,
                    critical,
                })
            }
            Method::TpnSimulation => {
                // This path rebuilds the arena net without refreshing the
                // solver scratch: the patch precondition no longer holds.
                self.shape = None;
                let (rows, cols) = {
                    let _span = repwf_obs::span!(TpnBuild);
                    build_tpn_view_into(view, model, &self.opts, &mut self.net)?
                };
                repwf_obs::counter_add(repwf_obs::CounterId::TpnBuilds, 1);
                // Enough firings to leave the transient: the transient of a
                // TEG is bounded in practice by a few multiples of the row
                // count.
                let k = 12 * rows.max(8) + 256;
                let schedule = tpn::sim::simulate(&self.net, k);
                // Each last-column transition fires once per local period;
                // in a net whose round-robin structure decouples into
                // components the components free-run at different rates,
                // and the sustainable period is the slowest — take the max
                // over rows.
                let window = k / 2;
                let lambda = (0..rows)
                    .map(|r| {
                        let t = grid_transition(cols, r, cols - 1);
                        schedule.period_estimate(t.0 as usize, window)
                    })
                    .fold(0.0f64, f64::max);
                Ok(PeriodReport {
                    period: lambda / m as f64,
                    mct,
                    model,
                    method: Method::TpnSimulation,
                    num_paths: m,
                    critical: "estimated from simulated schedule".to_string(),
                })
            }
            Method::Auto => unreachable!("Auto resolved above"),
        }
    }

    /// Evaluates an **unvalidated** candidate mapping against a borrowed
    /// pipeline/platform pair: validates the triple (no clones) and
    /// computes its period. This is the free-standing form of the
    /// [`MappingOracle`] session; hot search loops should prefer the
    /// oracle, which validates the platform tables once.
    pub fn compute_mapping(
        &mut self,
        pipeline: &Pipeline,
        platform: &Platform,
        mapping: &Mapping,
        model: CommModel,
        method: Method,
    ) -> Result<PeriodReport, PeriodError> {
        let view = InstanceView::new(pipeline, platform, mapping)?;
        self.compute_view(view, model, method)
    }
}

/// A session-style mapping oracle: borrows one pipeline/platform pair,
/// validates the platform **once** (per-processor speed and per-link
/// bandwidth validity tables), and then evaluates candidate [`Mapping`]s
/// by reference — no per-call `Instance` construction, no clones.
///
/// This is the object a mapping search holds for its whole run: combined
/// with the engine's warm starts and the TPN patch path, evaluating a
/// neighbor mapping costs a re-time + incremental solve instead of three
/// deep clones, a full validation pass, a TPN rebuild and a cold solve.
///
/// ```
/// use repwf_core::engine::MappingOracle;
/// use repwf_core::model::{CommModel, Mapping, Pipeline, Platform};
/// use repwf_core::period::Method;
///
/// let pipeline = Pipeline::new(vec![10.0, 20.0], vec![4.0]).unwrap();
/// let platform = Platform::uniform(3, 1.0, 1.0);
/// let mut oracle = MappingOracle::new(&pipeline, &platform).warm_start(true);
/// let a = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
/// let b = Mapping::new(vec![vec![1], vec![0, 2]]).unwrap();
/// let ra = oracle.compute(&a, CommModel::Strict, Method::FullTpn).unwrap();
/// let rb = oracle.compute(&b, CommModel::Strict, Method::FullTpn).unwrap(); // patched solve
/// assert!(ra.period > 0.0 && rb.period > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct MappingOracle<'a> {
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    engine: PeriodEngine,
    /// `speed_ok[u]`: processor `u` has a positive finite speed.
    speed_ok: Vec<bool>,
    /// `bw_ok[u·p + v]`: link `u → v` has a positive finite bandwidth.
    bw_ok: Vec<bool>,
    /// Incremental `M_ct`: per-stage cycle-times cached across candidate
    /// evaluations; a move re-examines only the stages it touched (and
    /// their neighbors). Sound here because the oracle pins one
    /// pipeline/platform pair for its whole lifetime.
    mct: MctCache,
}

impl<'a> MappingOracle<'a> {
    /// An oracle with a fresh hot-path engine (no labels, cold starts —
    /// call [`MappingOracle::warm_start`] for sequential searches).
    pub fn new(pipeline: &'a Pipeline, platform: &'a Platform) -> Self {
        MappingOracle::with_engine(pipeline, platform, PeriodEngine::new())
    }

    /// An oracle wrapping a caller-configured engine (build options, warm
    /// starts, previously grown arenas — all carried over).
    pub fn with_engine(pipeline: &'a Pipeline, platform: &'a Platform, engine: PeriodEngine) -> Self {
        let p = platform.num_procs();
        let speed_ok = (0..p)
            .map(|u| {
                let s = platform.speed(u);
                s.is_finite() && s > 0.0
            })
            .collect();
        let bw_ok = (0..p * p)
            .map(|k| {
                let b = platform.bandwidth(k / p, k % p);
                b.is_finite() && b > 0.0
            })
            .collect();
        MappingOracle { pipeline, platform, engine, speed_ok, bw_ok, mct: MctCache::new() }
    }

    /// Enables/disables warm-started policy iteration on the owned engine
    /// (builder-style). See the module docs for when this is safe.
    pub fn warm_start(mut self, on: bool) -> Self {
        self.engine = self.engine.warm_start(on);
        self
    }

    /// The borrowed pipeline.
    pub fn pipeline(&self) -> &'a Pipeline {
        self.pipeline
    }

    /// The borrowed platform.
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// The owned engine (e.g. to reset warm-start state between phases).
    pub fn engine_mut(&mut self) -> &mut PeriodEngine {
        &mut self.engine
    }

    /// Releases the engine (its arenas stay warm for the next oracle).
    pub fn into_engine(self) -> PeriodEngine {
        self.engine
    }

    /// The oracle's incremental `M_ct` cache (diagnostics: its counters
    /// let tests assert that a move re-examined only the stages it
    /// touched).
    pub fn mct_cache(&self) -> &MctCache {
        &self.mct
    }

    /// Lower bound on the period of **any feasible completion** of a
    /// partially-assigned mapping — the pruning oracle of the exact
    /// branch-and-bound search (`repwf_map::exact`).
    ///
    /// `prefix` holds the final ordered replica tuples of stages
    /// `0..prefix.len()`; `used[u]` marks the processors already taken
    /// (including everything in `prefix`). The bound is the maximum of two
    /// terms, both cheap and both valid under either [`CommModel`]:
    ///
    /// 1. the **partial `M_ct`** of the prefix
    ///    ([`prefix_cycle_bound`]): every cycle-time component already
    ///    determined by the prefix, with unknown boundary components
    ///    bounded by `0` — never above the `M_ct` (≤ period) of any
    ///    completion;
    /// 2. the **single-stage floor** of each open stage `i`: a stage
    ///    mapped on `m` replicas has `M_ct ≥ w_i / (m · max_u Π_u)`, and
    ///    any completion can give stage `i` at most
    ///    `avail − (open_stages − 1)` of the `avail` unused processors
    ///    (every other open stage needs at least one), none faster than
    ///    the fastest unused speed.
    ///
    /// Returns `f64::INFINITY` when no completion can be feasible (too few
    /// processors left, or an invalid resource baked into the prefix) —
    /// safe to prune unconditionally.
    pub fn prefix_period_bound(
        &self,
        prefix: &[Vec<usize>],
        used: &[bool],
        model: CommModel,
    ) -> f64 {
        let n = self.pipeline.num_stages();
        let k = prefix.len();
        let mut bound = prefix_cycle_bound(self.pipeline, self.platform, prefix, model);
        if k < n {
            let mut avail = 0usize;
            let mut s_max = 0.0f64;
            for (u, &taken) in used.iter().enumerate() {
                if !taken {
                    avail += 1;
                    s_max = s_max.max(self.platform.speed(u));
                }
            }
            let open = n - k;
            if avail < open {
                return f64::INFINITY;
            }
            let m_max = (avail - (open - 1)) as f64;
            for i in k..n {
                bound = bound.max(self.pipeline.work(i) / (m_max * s_max));
            }
        }
        bound
    }

    /// Validates a candidate against the borrowed pair — exactly the
    /// accept/reject (and error) behavior of [`Instance::new`], but from
    /// the precomputed per-processor/per-link tables.
    pub fn validate(&self, mapping: &Mapping) -> Result<(), ModelError> {
        let p = self.platform.num_procs();
        if self.pipeline.num_stages() != mapping.num_stages() {
            return Err(ModelError::StageCountMismatch {
                pipeline: self.pipeline.num_stages(),
                mapping: mapping.num_stages(),
            });
        }
        for i in 0..mapping.num_stages() {
            for &u in mapping.procs(i) {
                if u >= p {
                    return Err(ModelError::UnknownProcessor(u));
                }
                if !self.speed_ok[u] {
                    return Err(ModelError::InvalidSpeed { proc: u, speed: self.platform.speed(u) });
                }
            }
        }
        for e in 0..self.pipeline.num_edges() {
            let (src, dst) = self.pipeline.edge(e);
            for &u in mapping.procs(src) {
                for &v in mapping.procs(dst) {
                    if !self.bw_ok[u * p + v] {
                        return Err(ModelError::InvalidBandwidth {
                            from: u,
                            to: v,
                            bandwidth: self.platform.bandwidth(u, v),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Validates `mapping` and computes its period report. Results are
    /// bit-identical to building an [`Instance`] and calling
    /// [`PeriodEngine::compute`] on this oracle's engine.
    pub fn compute(
        &mut self,
        mapping: &Mapping,
        model: CommModel,
        method: Method,
    ) -> Result<PeriodReport, PeriodError> {
        self.validate(mapping)?;
        let view =
            InstanceView { pipeline: self.pipeline, platform: self.platform, mapping };
        self.engine.compute_view_mct(view, model, method, Some(&mut self.mct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};
    use crate::period::compute_period_with;

    fn inst(replicas: &[usize], work: f64, file: f64) -> Instance {
        let n = replicas.len();
        let pipeline = Pipeline::new(vec![work; n], vec![file; n - 1]).unwrap();
        let p: usize = replicas.iter().sum();
        let platform = Platform::uniform(p, 1.0, 1.0);
        let mut next = 0;
        let assignment: Vec<Vec<usize>> = replicas
            .iter()
            .map(|&m| {
                let procs: Vec<usize> = (next..next + m).collect();
                next += m;
                procs
            })
            .collect();
        Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
    }

    #[test]
    fn engine_matches_free_function_bitwise() {
        let opts = BuildOptions { labels: false, ..BuildOptions::default() };
        let mut engine = PeriodEngine::with_options(opts.clone());
        for replicas in [&[2usize, 3][..], &[1, 2, 2], &[3, 2]] {
            let i = inst(replicas, 5.0, 4.0);
            for model in [CommModel::Overlap, CommModel::Strict] {
                for method in [Method::Auto, Method::FullTpn] {
                    let a = compute_period_with(&i, model, method, &opts).unwrap();
                    let b = engine.compute(&i, model, method).unwrap();
                    assert_eq!(a.period.to_bits(), b.period.to_bits(), "{model} {method}");
                    assert_eq!(a.mct.to_bits(), b.mct.to_bits());
                    assert_eq!(a.num_paths, b.num_paths);
                }
            }
        }
    }

    #[test]
    fn warm_engine_is_bit_identical_to_cold() {
        let mut cold = PeriodEngine::new();
        let mut warm = PeriodEngine::new().warm_start(true);
        // Same-shape instances with varying costs: the warm path actually
        // reuses the previous policy here.
        for k in 1..=6 {
            let i = inst(&[2, 3], 4.0 + k as f64, 3.0 + 0.5 * k as f64);
            let a = cold.compute(&i, CommModel::Strict, Method::FullTpn).unwrap();
            let b = warm.compute(&i, CommModel::Strict, Method::FullTpn).unwrap();
            assert_eq!(a.period.to_bits(), b.period.to_bits(), "k={k}");
        }
    }

    #[test]
    fn engine_reports_build_errors() {
        let i = inst(&[4, 5, 7, 9], 1.0, 1.0); // m = 1260
        let mut engine =
            PeriodEngine::with_options(BuildOptions { labels: false, max_transitions: 100 });
        match engine.compute(&i, CommModel::Strict, Method::FullTpn) {
            Err(PeriodError::Build(BuildError::TooLarge { m, .. })) => assert_eq!(m, 1260),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // The engine stays usable after an error.
        let ok = inst(&[2, 3], 5.0, 4.0);
        assert!(engine.compute(&ok, CommModel::Strict, Method::FullTpn).is_ok());
    }

    /// A swap-heavy family: same replica counts (2, 3) on 5 processors,
    /// candidate k rotates which processors occupy which slots.
    fn swapped(k: usize) -> Instance {
        let pipeline = Pipeline::new(vec![5.0, 7.0], vec![3.0]).unwrap();
        let mut platform = Platform::uniform(5, 1.0, 1.0);
        for u in 0..5 {
            platform.set_speed(u, 1.0 + 0.2 * u as f64);
        }
        let procs: Vec<usize> = (0..5).map(|i| (i + k) % 5).collect();
        let mapping = Mapping::new(vec![procs[..2].to_vec(), procs[2..].to_vec()]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn patched_solves_match_cold_rebuild_bitwise() {
        for model in [CommModel::Overlap, CommModel::Strict] {
            let mut incremental = PeriodEngine::new().warm_start(true);
            for k in 0..8 {
                let i = swapped(k);
                let a = incremental.compute(&i, model, Method::FullTpn).unwrap();
                let b = PeriodEngine::new().compute(&i, model, Method::FullTpn).unwrap();
                assert_eq!(a.period.to_bits(), b.period.to_bits(), "{model} k={k}");
                assert_eq!(a.critical, b.critical);
            }
            // All but the first solve share the shape: 7 patched solves.
            assert_eq!(incremental.patched_solves(), 7, "{model}");
        }
    }

    #[test]
    fn patched_solves_skip_csr_and_tarjan() {
        // The tentpole acceptance check: after the first (rebuild) solve,
        // every shape-preserving solve performs zero CSR builds and zero
        // Tarjan runs — the structure cache serves the condensation.
        for model in [CommModel::Overlap, CommModel::Strict] {
            let mut engine = PeriodEngine::new().warm_start(true);
            engine.compute(&swapped(0), model, Method::FullTpn).unwrap();
            assert_eq!((engine.csr_builds(), engine.tarjan_runs()), (1, 1), "{model}");
            for k in 1..8 {
                engine.compute(&swapped(k), model, Method::FullTpn).unwrap();
            }
            assert_eq!(engine.patched_solves(), 7, "{model}");
            assert_eq!(
                (engine.csr_builds(), engine.tarjan_runs()),
                (1, 1),
                "{model}: patched solves must not rebuild CSR or rerun Tarjan"
            );
        }
    }

    #[test]
    fn errored_solve_clears_patch_state_and_rebuilds_cold() {
        // An errored call — even one that leaves the arenas untouched,
        // like a method/model mismatch — must drop the patch precondition
        // AND the cached condensation, so the next call rebuilds cold.
        let mut engine = PeriodEngine::new().warm_start(true);
        let a = swapped(0);
        engine.compute(&a, CommModel::Strict, Method::FullTpn).unwrap();
        engine.compute(&swapped(1), CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(engine.patched_solves(), 1);
        assert_eq!(engine.csr_builds(), 1);
        assert!(matches!(
            engine.compute(&a, CommModel::Strict, Method::Polynomial),
            Err(PeriodError::PolynomialNeedsOverlap)
        ));
        let before = engine.patched_solves();
        let r = engine.compute(&swapped(2), CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(engine.patched_solves(), before, "errored solve must force a rebuild");
        assert_eq!(engine.csr_builds(), 2);
        let cold = PeriodEngine::new().compute(&swapped(2), CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(r.period.to_bits(), cold.period.to_bits());
        // And the engine patches again from the fresh state.
        engine.compute(&swapped(3), CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(engine.patched_solves(), before + 1);
    }

    #[test]
    fn reset_patch_state_forces_full_rebuild() {
        let mut engine = PeriodEngine::new().warm_start(true);
        engine.compute(&swapped(0), CommModel::Strict, Method::FullTpn).unwrap();
        engine.reset_patch_state();
        let r = engine.compute(&swapped(1), CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(engine.patched_solves(), 0);
        assert_eq!(engine.csr_builds(), 2);
        let cold = PeriodEngine::new().compute(&swapped(1), CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(r.period.to_bits(), cold.period.to_bits());
    }

    #[test]
    fn oracle_mct_cache_matches_rescan_and_stays_local() {
        let pipeline = Pipeline::new(vec![5.0, 7.0], vec![3.0]).unwrap();
        let mut platform = Platform::uniform(5, 1.0, 2.0);
        for u in 0..5 {
            platform.set_speed(u, 1.0 + 0.2 * u as f64);
        }
        let mut oracle = MappingOracle::new(&pipeline, &platform).warm_start(true);
        for k in 0..6 {
            let i = swapped(k);
            let r = oracle.compute(&i.mapping, CommModel::Strict, Method::FullTpn).unwrap();
            let (mct, _) = crate::cycle_time::max_cycle_time_view(
                InstanceView::new(&pipeline, &platform, &i.mapping).unwrap(),
                CommModel::Strict,
            );
            assert_eq!(r.mct.to_bits(), mct.to_bits(), "k={k}");
        }
        assert_eq!(oracle.mct_cache().evals(), 6);
        // 2 stages: even a full recompute is 2 stages; the first eval pays
        // 2, the rest at most 2 each — just pin that the cache is live.
        assert!(oracle.mct_cache().stage_recomputes() >= 2);
    }

    #[test]
    fn prefix_period_bound_is_a_true_lower_bound() {
        let pipeline = Pipeline::new(vec![5.0, 7.0], vec![3.0]).unwrap();
        let mut platform = Platform::uniform(5, 1.0, 1.0);
        for u in 0..5 {
            platform.set_speed(u, 1.0 + 0.2 * u as f64);
        }
        let mut oracle = MappingOracle::new(&pipeline, &platform);
        for model in [CommModel::Overlap, CommModel::Strict] {
            let prefix = vec![vec![0usize, 1]];
            let mut used = vec![false; 5];
            (used[0], used[1]) = (true, true);
            let bound = oracle.prefix_period_bound(&prefix, &used, model);
            assert!(bound.is_finite() && bound > 0.0);
            for rest in [vec![2], vec![3, 4], vec![4, 2, 3]] {
                let m = Mapping::new(vec![prefix[0].clone(), rest]).unwrap();
                let p = oracle.compute(&m, model, Method::Auto).unwrap().period;
                assert!(bound <= p + 1e-12, "{model:?}: bound {bound} vs period {p}");
            }
            // Every processor taken but a stage still open: no completion.
            assert!(oracle.prefix_period_bound(&prefix, &[true; 5], model).is_infinite());
        }
    }

    #[test]
    fn shape_change_falls_back_to_rebuild() {
        let mut engine = PeriodEngine::new();
        let a = inst(&[2, 3], 5.0, 4.0);
        let b = inst(&[3, 2], 5.0, 4.0); // different replica counts
        engine.compute(&a, CommModel::Strict, Method::FullTpn).unwrap();
        let before = engine.patched_solves();
        let rb = engine.compute(&b, CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(engine.patched_solves(), before, "shape changed: must rebuild");
        let cold = PeriodEngine::new().compute(&b, CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(rb.period.to_bits(), cold.period.to_bits());
    }

    #[test]
    fn simulation_method_invalidates_patch_state() {
        let mut engine = PeriodEngine::new();
        let a = swapped(0);
        engine.compute(&a, CommModel::Strict, Method::FullTpn).unwrap();
        // Rebuilds the arena net without refreshing the solver scratch…
        engine.compute(&a, CommModel::Strict, Method::TpnSimulation).unwrap();
        // …so the next full solve must NOT patch, and must stay correct.
        let before = engine.patched_solves();
        let b = swapped(1);
        let r = engine.compute(&b, CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(engine.patched_solves(), before);
        let cold = PeriodEngine::new().compute(&b, CommModel::Strict, Method::FullTpn).unwrap();
        assert_eq!(r.period.to_bits(), cold.period.to_bits());
    }

    #[test]
    fn oracle_matches_instance_engine_bitwise() {
        let pipeline = Pipeline::new(vec![5.0, 7.0], vec![3.0]).unwrap();
        let platform = Platform::uniform(5, 1.0, 2.0);
        let mut oracle = MappingOracle::new(&pipeline, &platform).warm_start(true);
        for k in 0..6 {
            let i = swapped(k);
            let r = oracle
                .compute(&i.mapping, CommModel::Strict, Method::FullTpn)
                .unwrap();
            let cold = PeriodEngine::new()
                .compute(
                    &Instance::new(pipeline.clone(), platform.clone(), i.mapping.clone()).unwrap(),
                    CommModel::Strict,
                    Method::FullTpn,
                )
                .unwrap();
            assert_eq!(r.period.to_bits(), cold.period.to_bits(), "k={k}");
        }
    }

    #[test]
    fn oracle_validates_like_instance_new() {
        use crate::model::ModelError;
        let pipeline = Pipeline::new(vec![1.0, 1.0], vec![1.0]).unwrap();
        let mut platform = Platform::uniform(3, 1.0, 1.0);
        platform.set_bandwidth(0, 1, 0.0);
        let mut oracle = MappingOracle::new(&pipeline, &platform);
        let bad_link = Mapping::new(vec![vec![0], vec![1]]).unwrap();
        let unknown = Mapping::new(vec![vec![0], vec![9]]).unwrap();
        let ok = Mapping::new(vec![vec![0], vec![2]]).unwrap();
        for (mapping, _name) in [(&bad_link, "bad link"), (&unknown, "unknown"), (&ok, "ok")] {
            let via_oracle = oracle.compute(mapping, CommModel::Overlap, Method::Auto);
            let via_instance =
                Instance::new(pipeline.clone(), platform.clone(), mapping.clone());
            match (via_oracle, via_instance) {
                (Ok(_), Ok(_)) => {}
                (Err(PeriodError::Model(a)), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("oracle {a:?} vs instance {b:?}"),
            }
        }
        assert!(matches!(
            oracle.validate(&unknown),
            Err(ModelError::UnknownProcessor(9))
        ));
    }

    #[test]
    fn simulation_method_matches_free_function() {
        let opts = BuildOptions { labels: false, ..BuildOptions::default() };
        let i = inst(&[2, 3], 5.0, 4.0);
        let mut engine = PeriodEngine::with_options(opts.clone());
        let a = compute_period_with(&i, CommModel::Strict, Method::TpnSimulation, &opts).unwrap();
        let b = engine.compute(&i, CommModel::Strict, Method::TpnSimulation).unwrap();
        assert_eq!(a.period.to_bits(), b.period.to_bits());
    }
}
