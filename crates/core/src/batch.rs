//! Shape-batched period evaluation of mapped workflows.
//!
//! Campaign draws collapse into a handful of TPN *shapes*: the place
//! structure of a mapping's TPN is a pure function of the communication
//! model, the per-stage replica counts and the workflow's edge set, so
//! two instances with equal counts on the same precedence graph differ
//! only in firing times. A [`ShapeBatchSolver`] exploits
//! that end to end — one TPN build, one ratio-graph build, one CSR +
//! Tarjan condensation per shape, with per-instance firing-time planes
//! solved k at a time by the batched Howard kernel
//! (`maxplus::batch`, via [`tpn::analysis::PeriodBatch`]).
//!
//! Results are bit-for-bit those of a cold [`crate::engine::PeriodEngine`]
//! full-TPN solve per instance; `crates/gen`'s campaign property tests pin
//! the whole batched campaign byte-identical to the unbatched one.

use crate::model::{CommModel, InstanceView};
use crate::tpn_build::{build_tpn_view_into, transition_times_into, BuildError, BuildOptions};
use std::collections::HashMap;
use tpn::analysis::{AnalysisError, PeriodBatch, PeriodSolution};
use tpn::net::TimedEventGraph;

/// Canonical TPN shape of a mapped workflow: communication model,
/// per-stage replica counts, and the workflow's edge set — the three
/// inputs the place structure is a pure function of.
type ShapeKey = (CommModel, Vec<usize>, Vec<(u32, u32)>);

/// Batched period solver for groups of same-shape instances.
///
/// Usage per group: [`ShapeBatchSolver::begin`] with the group's first
/// instance (builds or reuses the shared structure), then
/// [`ShapeBatchSolver::stage`] each instance's firing times, then
/// [`ShapeBatchSolver::solve`]. Hold one per worker thread and reuse
/// across groups — consecutive same-shape groups keep the whole
/// structural phase cached (counter-asserted in the tests).
#[derive(Debug, Clone)]
pub struct ShapeBatchSolver {
    opts: BuildOptions,
    net: TimedEventGraph,
    batch: PeriodBatch,
    times: Vec<f64>,
    counts: Vec<usize>,
    edges: Vec<(u32, u32)>,
    /// Canonical shape (model + replica counts + workflow edge set) →
    /// sequential key. Keys are handed to the solver workspace as
    /// structure tokens; sequential assignment (not hashes) keeps them
    /// collision-free and deterministic in one worker.
    keys: HashMap<ShapeKey, u64>,
    next_key: u64,
    /// The shape key the arena net currently holds, if any.
    built: Option<u64>,
    rows: usize,
    tpn_builds: u64,
}

impl ShapeBatchSolver {
    /// A solver whose TPN builds are capped at `max_transitions`
    /// (label-free nets, like the campaign engines).
    pub fn new(max_transitions: usize) -> Self {
        ShapeBatchSolver {
            opts: BuildOptions { labels: false, max_transitions },
            net: TimedEventGraph::new(),
            batch: PeriodBatch::new(),
            times: Vec::new(),
            counts: Vec::new(),
            edges: Vec::new(),
            keys: HashMap::new(),
            next_key: 0,
            built: None,
            rows: 0,
            tpn_builds: 0,
        }
    }

    /// Opens a batch of `k` instances shaped like `view` under `model`:
    /// resolves the canonical shape key (model, per-stage replica counts,
    /// workflow edge set), builds the shared TPN structure unless the
    /// arena already holds this shape, and sizes the cost planes. Fails
    /// like an engine build would (size cap, path-count overflow).
    pub fn begin(
        &mut self,
        view: InstanceView<'_>,
        model: CommModel,
        k: usize,
    ) -> Result<(), BuildError> {
        let mut counts = std::mem::take(&mut self.counts);
        view.mapping.replica_counts_into(&mut counts);
        let mut edges = std::mem::take(&mut self.edges);
        edges.clear();
        edges.extend_from_slice(view.pipeline.edges());
        let probe = (model, counts, edges);
        let key = match self.keys.get(&probe) {
            Some(&key) => {
                self.counts = probe.1;
                self.edges = probe.2;
                key
            }
            None => {
                let key = self.next_key;
                self.next_key += 1;
                self.keys.insert(probe, key);
                key
            }
        };
        if self.built != Some(key) {
            self.built = None;
            let (rows, _cols) = build_tpn_view_into(view, model, &self.opts, &mut self.net)?;
            self.rows = rows;
            self.tpn_builds += 1;
            self.built = Some(key);
        }
        self.batch.set_structure(&self.net, k, key);
        Ok(())
    }

    /// Stages instance `q` of the open batch: recomputes its firing times
    /// from `view` (bit-identical to a fresh TPN build of `view`) straight
    /// into the cost planes. `view` must share the open batch's shape.
    pub fn stage(&mut self, q: usize, view: InstanceView<'_>) {
        transition_times_into(view, self.rows, &mut self.times);
        self.batch.stage(q, &self.times);
    }

    /// Solves every staged instance in one batched Howard pass. Results
    /// are in stage order; divide each period by
    /// [`ShapeBatchSolver::rows`] (the path count `m`) for the
    /// per-data-set period, exactly as the engine does.
    pub fn solve(&mut self) -> Vec<Result<Option<PeriodSolution>, AnalysisError>> {
        self.batch.solve()
    }

    /// Number of grid rows `m` of the open batch's shape.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// TPN structure builds performed — one per distinct consecutive
    /// shape, however many instances flowed through.
    pub fn tpn_builds(&self) -> u64 {
        self.tpn_builds
    }

    /// CSR adjacency builds performed by the underlying solver workspace.
    pub fn csr_builds(&self) -> u64 {
        self.batch.csr_builds()
    }

    /// Tarjan condensation runs performed by the underlying solver
    /// workspace.
    pub fn tarjan_runs(&self) -> u64 {
        self.batch.tarjan_runs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PeriodEngine;
    use crate::model::{Instance, Mapping, Pipeline, Platform};
    use crate::period::Method;

    /// Same-shape family: replica counts fixed, processor slots rotated,
    /// heterogeneous speeds so every rotation has distinct times.
    fn rotated(k: usize) -> Instance {
        let pipeline = Pipeline::new(vec![5.0, 7.0, 4.0], vec![3.0, 2.0]).unwrap();
        let mut platform = Platform::uniform(6, 1.0, 1.0);
        for u in 0..6 {
            platform.set_speed(u, 1.0 + 0.2 * u as f64);
        }
        let procs: Vec<usize> = (0..6).map(|i| (i + k) % 6).collect();
        let mapping =
            Mapping::new(vec![procs[..2].to_vec(), procs[2..5].to_vec(), procs[5..].to_vec()])
                .unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    /// Different shape on the same platform (counts 3/2/1 instead of
    /// 2/3/1).
    fn other_shape() -> Instance {
        let pipeline = Pipeline::new(vec![5.0, 7.0, 4.0], vec![3.0, 2.0]).unwrap();
        let platform = Platform::uniform(6, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0, 1, 2], vec![3, 4], vec![5]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn batched_groups_match_cold_engine_bitwise_with_one_structural_phase() {
        for model in [CommModel::Strict, CommModel::Overlap] {
            let mut solver = ShapeBatchSolver::new(4_000_000);
            for round in 0..2 {
                let group: Vec<Instance> = (round * 3..round * 3 + 3).map(rotated).collect();
                solver.begin(group[0].view(), model, group.len()).unwrap();
                for (q, inst) in group.iter().enumerate() {
                    solver.stage(q, inst.view());
                }
                let m = solver.rows() as f64;
                let solved = solver.solve();
                for (q, (res, inst)) in solved.iter().zip(&group).enumerate() {
                    let sol = res.as_ref().unwrap().as_ref().unwrap();
                    let reference = PeriodEngine::new()
                        .compute(inst, model, Method::FullTpn)
                        .unwrap();
                    assert_eq!(
                        (sol.period / m).to_bits(),
                        reference.period.to_bits(),
                        "{model} round {round} q {q}"
                    );
                }
                // Two same-shape groups: one TPN build, one condensation.
                assert_eq!(
                    (solver.tpn_builds(), solver.csr_builds(), solver.tarjan_runs()),
                    (1, 1, 1),
                    "{model} round {round}"
                );
            }
            // A different shape rebuilds exactly once more.
            let other = other_shape();
            solver.begin(other.view(), model, 1).unwrap();
            solver.stage(0, other.view());
            let m = solver.rows() as f64;
            let sol = solver.solve().remove(0).unwrap().unwrap();
            let reference =
                PeriodEngine::new().compute(&other, model, Method::FullTpn).unwrap();
            assert_eq!((sol.period / m).to_bits(), reference.period.to_bits(), "{model}");
            assert_eq!(
                (solver.tpn_builds(), solver.csr_builds(), solver.tarjan_runs()),
                (2, 2, 2),
                "{model}"
            );
        }
    }

    #[test]
    fn begin_respects_the_size_cap() {
        let inst = rotated(0);
        let mut solver = ShapeBatchSolver::new(4);
        match solver.begin(inst.view(), CommModel::Strict, 1) {
            Err(BuildError::TooLarge { .. }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}
