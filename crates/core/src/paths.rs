//! Proposition 1: paths followed by the input data.
//!
//! With stage `S_i` replicated on `m_i` processors served round-robin, data
//! set `j` traverses processors `(P_{0, j mod m_0}, …, P_{n−1, j mod m_{n−1}})`,
//! and the number of distinct paths is `m = lcm(m_0, …, m_{n−1})` — data set
//! `j` takes the same path as data set `j − m` (Table 1 of the paper).

use crate::model::{Instance, Mapping, ProcId};

/// `gcd` over `u128`.
pub fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// `lcm` over `u128`, `None` on overflow.
pub fn lcm(a: u128, b: u128) -> Option<u128> {
    if a == 0 || b == 0 {
        return Some(0);
    }
    (a / gcd(a, b)).checked_mul(b)
}

/// `m = lcm(m_0, …, m_{n−1})`: the number of distinct paths (and the number
/// of rows of the full TPN). `None` on u128 overflow — astronomically large
/// replication patterns.
pub fn num_paths(replicas: &[usize]) -> Option<u128> {
    replicas.iter().try_fold(1u128, |acc, &m| lcm(acc, m as u128))
}

/// Number of distinct paths of a mapping (Proposition 1), without
/// materializing the replica-count vector — the hot-path variant used by
/// the period engine on every oracle call.
pub fn mapping_num_paths(mapping: &Mapping) -> Option<u128> {
    mapping
        .assignment()
        .iter()
        .try_fold(1u128, |acc, procs| lcm(acc, procs.len() as u128))
}

/// Number of distinct paths of an instance (Proposition 1).
pub fn instance_num_paths(inst: &Instance) -> Option<u128> {
    mapping_num_paths(&inst.mapping)
}

/// The path followed by data set `j`: one processor per stage.
pub fn path_of(inst: &Instance, j: u128) -> Vec<ProcId> {
    path_of_view(inst.view(), j)
}

/// [`path_of`] on a borrowed view.
pub fn path_of_view(view: crate::model::InstanceView<'_>, j: u128) -> Vec<ProcId> {
    (0..view.num_stages())
        .map(|i| {
            let procs = view.mapping.procs(i);
            procs[(j % procs.len() as u128) as usize]
        })
        .collect()
}

/// Iterator over the paths of the first `limit` data sets.
pub fn paths(inst: &Instance, limit: u128) -> impl Iterator<Item = Vec<ProcId>> + '_ {
    (0..limit).map(move |j| path_of(inst, j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};

    fn inst(replicas: &[usize]) -> Instance {
        let n = replicas.len();
        let pipeline = Pipeline::new(vec![1.0; n], vec![1.0; n - 1]).unwrap();
        let p: usize = replicas.iter().sum();
        let platform = Platform::uniform(p, 1.0, 1.0);
        let mut next = 0;
        let assignment: Vec<Vec<usize>> = replicas
            .iter()
            .map(|&m| {
                let v: Vec<usize> = (next..next + m).collect();
                next += m;
                v
            })
            .collect();
        let mapping = Mapping::new(assignment).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(21, 27), 3);
        assert_eq!(lcm(4, 6), Some(12));
        assert_eq!(lcm(0, 5), Some(0));
        assert_eq!(num_paths(&[1, 2, 3, 1]), Some(6));
    }

    #[test]
    fn lcm_overflow_detected() {
        assert_eq!(lcm(u128::MAX, u128::MAX - 1), None);
    }

    #[test]
    fn example_a_paths() {
        // Example A of the paper: replicas (1, 2, 3, 1) ⇒ m = 6 and the
        // paths of Table 1.
        let inst = inst(&[1, 2, 3, 1]);
        assert_eq!(instance_num_paths(&inst), Some(6));
        let got: Vec<Vec<usize>> = paths(&inst, 8).collect();
        // procs: S0={0}, S1={1,2}, S2={3,4,5}, S3={6}
        assert_eq!(got[0], vec![0, 1, 3, 6]);
        assert_eq!(got[1], vec![0, 2, 4, 6]);
        assert_eq!(got[2], vec![0, 1, 5, 6]);
        assert_eq!(got[3], vec![0, 2, 3, 6]);
        assert_eq!(got[4], vec![0, 1, 4, 6]);
        assert_eq!(got[5], vec![0, 2, 5, 6]);
        // Table 1: data set i takes the same path as data set i − 6.
        assert_eq!(got[6], got[0]);
        assert_eq!(got[7], got[1]);
    }

    #[test]
    fn example_c_m_value() {
        // Example C: replicas (5, 21, 27, 11) ⇒ m = 10395.
        assert_eq!(num_paths(&[5, 21, 27, 11]), Some(10395));
    }

    #[test]
    fn paths_are_distinct_within_m() {
        let inst = inst(&[2, 3]);
        let m = instance_num_paths(&inst).unwrap();
        assert_eq!(m, 6);
        let all: Vec<_> = paths(&inst, m).collect();
        for a in 0..all.len() {
            for b in (a + 1)..all.len() {
                assert_ne!(all[a], all[b], "paths {a} and {b} must differ");
            }
        }
    }
}
