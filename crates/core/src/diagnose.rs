//! Mapping diagnostics: warnings a practitioner would want before
//! deploying a mapping (none of these are *errors* — the instance is
//! valid — but each flags throughput left on the table).

use crate::cycle_time::cycle_times;
use crate::model::{CommModel, Instance};
use std::fmt;

/// A diagnostic finding about a mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Diagnostic {
    /// Processors on the platform that no stage uses.
    UnusedProcessors {
        /// the idle processors
        procs: Vec<usize>,
    },
    /// A replicated stage whose replica speeds differ by more than the
    /// factor: under uniform round-robin, the slow replica dictates the
    /// stage's rate (consider the weighted extension or dropping it).
    ImbalancedReplicas {
        /// the stage
        stage: usize,
        /// slowest/fastest computation-time ratio (> 1)
        ratio: f64,
    },
    /// A stage whose replication cannot help because a neighbouring
    /// communication port already saturates first (its port cycle-time
    /// exceeds the stage's computation cycle-time).
    PortBound {
        /// the stage
        stage: usize,
        /// the saturated processor
        proc: usize,
    },
    /// The mapping has no critical resource under the given model: the
    /// period strictly exceeds every cycle-time (round-robin interference).
    NoCriticalResource {
        /// the model in which the gap was measured
        model: CommModel,
        /// relative gap `(P̂ − M_ct)/M_ct`
        gap: f64,
    },
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::UnusedProcessors { procs } => {
                write!(f, "unused processors: {procs:?}")
            }
            Diagnostic::ImbalancedReplicas { stage, ratio } => write!(
                f,
                "stage {stage}: replica speeds spread {ratio:.2}x — uniform round-robin is dictated by the slowest"
            ),
            Diagnostic::PortBound { stage, proc } => write!(
                f,
                "stage {stage}: P{proc} is port-bound — more replicas cannot raise throughput"
            ),
            Diagnostic::NoCriticalResource { model, gap } => write!(
                f,
                "{model}: no critical resource — period is {:.1}% above the busiest resource",
                gap * 100.0
            ),
        }
    }
}

/// Runs all structural diagnostics (cheap; no TPN is built) plus the
/// period-gap check when `period` (per data set) is supplied.
pub fn diagnose(inst: &Instance, model: CommModel, period: Option<f64>) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // unused processors
    let mut used = vec![false; inst.platform.num_procs()];
    for i in 0..inst.num_stages() {
        for &u in inst.mapping.procs(i) {
            used[u] = true;
        }
    }
    let idle: Vec<usize> = (0..used.len()).filter(|&u| !used[u]).collect();
    if !idle.is_empty() {
        out.push(Diagnostic::UnusedProcessors { procs: idle });
    }

    // replica imbalance
    for i in 0..inst.num_stages() {
        let times: Vec<f64> = inst.mapping.procs(i).iter().map(|&u| inst.comp_time(i, u)).collect();
        if times.len() > 1 {
            let fast = times.iter().copied().fold(f64::INFINITY, f64::min);
            let slow = times.iter().copied().fold(0.0f64, f64::max);
            if fast > 0.0 && slow / fast > 1.5 {
                out.push(Diagnostic::ImbalancedReplicas { stage: i, ratio: slow / fast });
            }
        }
    }

    // port-bound stages
    for ct in cycle_times(inst) {
        let port = ct.c_in.max(ct.c_out);
        if port > ct.c_comp && port > 0.0 && inst.mapping.replicas(ct.stage) > 1 {
            out.push(Diagnostic::PortBound { stage: ct.stage, proc: ct.proc });
        }
    }

    // gap
    if let Some(p) = period {
        let (mct, _) = crate::cycle_time::max_cycle_time(inst, model);
        let gap = (p - mct) / mct;
        if gap > 1e-7 {
            out.push(Diagnostic::NoCriticalResource { model, gap });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{example_a, example_b};
    use crate::model::{Mapping, Pipeline, Platform};
    use crate::period::{compute_period, Method};

    #[test]
    fn unused_processors_flagged() {
        let pipeline = Pipeline::new(vec![1.0], vec![]).unwrap();
        let platform = Platform::uniform(4, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![1]]).unwrap();
        let inst = Instance::new(pipeline, platform, mapping).unwrap();
        let d = diagnose(&inst, CommModel::Overlap, None);
        assert!(d.iter().any(|x| matches!(
            x,
            Diagnostic::UnusedProcessors { procs } if procs == &vec![0, 2, 3]
        )));
    }

    #[test]
    fn imbalance_flagged() {
        let pipeline = Pipeline::new(vec![12.0], vec![]).unwrap();
        let mut platform = Platform::uniform(2, 1.0, 1.0);
        platform.set_speed(0, 4.0);
        let mapping = Mapping::new(vec![vec![0, 1]]).unwrap();
        let inst = Instance::new(pipeline, platform, mapping).unwrap();
        let d = diagnose(&inst, CommModel::Overlap, None);
        assert!(d.iter().any(|x| matches!(
            x,
            Diagnostic::ImbalancedReplicas { stage: 0, ratio } if (*ratio - 4.0).abs() < 1e-9
        )));
    }

    #[test]
    fn gap_flagged_on_example_b() {
        let inst = example_b();
        let p = compute_period(&inst, CommModel::Overlap, Method::Auto).unwrap().period;
        let d = diagnose(&inst, CommModel::Overlap, Some(p));
        assert!(d
            .iter()
            .any(|x| matches!(x, Diagnostic::NoCriticalResource { gap, .. } if *gap > 0.1)));
    }

    #[test]
    fn no_gap_on_example_a_overlap() {
        let inst = example_a();
        let p = compute_period(&inst, CommModel::Overlap, Method::Auto).unwrap().period;
        let d = diagnose(&inst, CommModel::Overlap, Some(p));
        assert!(!d.iter().any(|x| matches!(x, Diagnostic::NoCriticalResource { .. })));
    }

    #[test]
    fn port_bound_flagged() {
        // Two receivers of a heavy file, negligible compute: the in-ports
        // dominate their compute.
        let pipeline = Pipeline::new(vec![0.1, 0.1], vec![10.0]).unwrap();
        let platform = Platform::uniform(3, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
        let inst = Instance::new(pipeline, platform, mapping).unwrap();
        let d = diagnose(&inst, CommModel::Overlap, None);
        assert!(d.iter().any(|x| matches!(x, Diagnostic::PortBound { stage: 1, .. })));
    }

    #[test]
    fn display_is_informative() {
        let d = Diagnostic::ImbalancedReplicas { stage: 2, ratio: 3.0 };
        let s = format!("{d}");
        assert!(s.contains("stage 2") && s.contains("3.00x"));
    }
}
