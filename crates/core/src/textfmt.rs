//! A plain-text instance format, so workflows can be described in files and
//! analyzed by the `analyze` CLI without writing Rust.
//!
//! ```text
//! # comment
//! workflow v1
//! stages   <w_0> <w_1> … <w_{n-1}>
//! files    <δ_0> … <δ_{n-2}>       # linear chain: file k goes S_k → S_{k+1}
//! edge <src> <dst> <δ>             # series-parallel DAG: repeated, instead of `files`
//! speeds   <Π_0> … <Π_{p-1}>
//! bandwidth <u> <v> <b>         # repeated; unset links default to `default`
//! default-bandwidth <b>
//! map <stage> <proc> [<proc>…]  # round-robin order; one line per stage
//! ```
//!
//! `files` and `edge` are mutually exclusive: chains use the compact
//! `files` line (serialization is byte-identical to the pre-DAG format),
//! general series-parallel workflows list one `edge` line per precedence
//! edge.
//!
//! Writing and re-reading an instance reproduces it exactly on the
//! processors/links the mapping uses (round-trip tested).

use crate::model::{Instance, Mapping, ModelError, Pipeline, Platform};
use std::fmt::Write as _;

/// Parse errors for the text format.
#[derive(Debug, Clone, PartialEq)]
pub enum TextError {
    /// Missing or wrong `workflow v1` header.
    BadHeader,
    /// Malformed line (1-based index).
    BadLine(usize),
    /// A required section is missing.
    Missing(&'static str),
    /// Model-level validation failed after parsing.
    Model(ModelError),
}

impl std::fmt::Display for TextError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TextError::BadHeader => write!(f, "expected `workflow v1` header"),
            TextError::BadLine(n) => write!(f, "malformed line {n}"),
            TextError::Missing(s) => write!(f, "missing section `{s}`"),
            TextError::Model(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for TextError {}

impl From<ModelError> for TextError {
    fn from(e: ModelError) -> Self {
        TextError::Model(e)
    }
}

/// Serializes an instance to the text format (lists every used link's
/// bandwidth explicitly; unused links are emitted only when they differ
/// from the default).
pub fn to_text(inst: &Instance) -> String {
    let mut out = String::from("workflow v1\n");
    let works: Vec<String> = inst.pipeline.works().iter().map(f64::to_string).collect();
    let _ = writeln!(out, "stages {}", works.join(" "));
    if inst.pipeline.is_linear() {
        let files: Vec<String> = inst.pipeline.file_sizes().iter().map(f64::to_string).collect();
        if !files.is_empty() {
            let _ = writeln!(out, "files {}", files.join(" "));
        }
    } else {
        for e in 0..inst.pipeline.num_edges() {
            let (src, dst) = inst.pipeline.edge(e);
            let _ = writeln!(out, "edge {src} {dst} {}", inst.pipeline.file(e));
        }
    }
    let p = inst.platform.num_procs();
    let speeds: Vec<String> = (0..p).map(|u| inst.platform.speed(u).to_string()).collect();
    let _ = writeln!(out, "speeds {}", speeds.join(" "));
    let _ = writeln!(out, "default-bandwidth 1");
    for u in 0..p {
        for v in 0..p {
            let b = inst.platform.bandwidth(u, v);
            if u != v && b != 1.0 {
                let _ = writeln!(out, "bandwidth {u} {v} {b}");
            }
        }
    }
    for (i, procs) in inst.mapping.assignment().iter().enumerate() {
        let list: Vec<String> = procs.iter().map(usize::to_string).collect();
        let _ = writeln!(out, "map {i} {}", list.join(" "));
    }
    out
}

/// Parses an instance from the text format.
pub fn from_text(text: &str) -> Result<Instance, TextError> {
    let mut works: Option<Vec<f64>> = None;
    let mut files: Vec<f64> = Vec::new();
    let mut edges: Vec<(crate::model::StageId, crate::model::StageId, f64)> = Vec::new();
    let mut speeds: Option<Vec<f64>> = None;
    let mut default_bw = 1.0f64;
    let mut links: Vec<(usize, usize, f64)> = Vec::new();
    let mut maps: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut header = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if !header {
            if line == "workflow v1" {
                header = true;
                continue;
            }
            return Err(TextError::BadHeader);
        }
        let mut it = line.split_whitespace();
        let key = it.next().ok_or(TextError::BadLine(lineno))?;
        let nums = |it: std::str::SplitWhitespace<'_>| -> Result<Vec<f64>, TextError> {
            it.map(|s| s.parse::<f64>().map_err(|_| TextError::BadLine(lineno))).collect()
        };
        match key {
            "stages" => works = Some(nums(it)?),
            "files" => files = nums(it)?,
            "edge" => {
                let src: usize =
                    it.next().and_then(|s| s.parse().ok()).ok_or(TextError::BadLine(lineno))?;
                let dst: usize =
                    it.next().and_then(|s| s.parse().ok()).ok_or(TextError::BadLine(lineno))?;
                let size: f64 =
                    it.next().and_then(|s| s.parse().ok()).ok_or(TextError::BadLine(lineno))?;
                edges.push((src, dst, size));
            }
            "speeds" => speeds = Some(nums(it)?),
            "default-bandwidth" => {
                default_bw =
                    it.next().and_then(|s| s.parse().ok()).ok_or(TextError::BadLine(lineno))?;
            }
            "bandwidth" => {
                let u: usize =
                    it.next().and_then(|s| s.parse().ok()).ok_or(TextError::BadLine(lineno))?;
                let v: usize =
                    it.next().and_then(|s| s.parse().ok()).ok_or(TextError::BadLine(lineno))?;
                let b: f64 =
                    it.next().and_then(|s| s.parse().ok()).ok_or(TextError::BadLine(lineno))?;
                links.push((u, v, b));
            }
            "map" => {
                let stage: usize =
                    it.next().and_then(|s| s.parse().ok()).ok_or(TextError::BadLine(lineno))?;
                let procs: Result<Vec<usize>, _> =
                    it.map(|s| s.parse::<usize>().map_err(|_| TextError::BadLine(lineno))).collect();
                maps.push((stage, procs?));
            }
            _ => return Err(TextError::BadLine(lineno)),
        }
    }
    if !header {
        return Err(TextError::BadHeader);
    }

    let works = works.ok_or(TextError::Missing("stages"))?;
    let speeds = speeds.ok_or(TextError::Missing("speeds"))?;
    if !edges.is_empty() && !files.is_empty() {
        return Err(TextError::Missing("either `files` or `edge` lines, not both"));
    }
    let pipeline = if edges.is_empty() {
        Pipeline::new(works, files)?
    } else {
        Pipeline::from_edges(works, edges)?
    };
    let p = speeds.len();
    let mut platform = Platform::uniform(p, 1.0, default_bw);
    for (u, speed) in speeds.into_iter().enumerate() {
        platform.set_speed(u, speed);
    }
    for (u, v, b) in links {
        if u >= p || v >= p {
            return Err(TextError::Model(ModelError::UnknownProcessor(u.max(v))));
        }
        platform.set_bandwidth(u, v, b);
    }
    maps.sort_by_key(|&(stage, _)| stage);
    let mut assignment = Vec::with_capacity(maps.len());
    for (expect, (stage, procs)) in maps.into_iter().enumerate() {
        if stage != expect {
            return Err(TextError::Missing("map (one line per stage, in order)"));
        }
        assignment.push(procs);
    }
    let mapping = Mapping::new(assignment)?;
    Ok(Instance::new(pipeline, platform, mapping)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{example_a, example_b};

    #[test]
    fn round_trip_examples() {
        for inst in [example_a(), example_b()] {
            let text = to_text(&inst);
            let back = from_text(&text).unwrap();
            // Pipelines and mappings must match exactly.
            assert_eq!(inst.pipeline, back.pipeline);
            assert_eq!(inst.mapping, back.mapping);
            // Platform must match on every used time.
            for i in 0..inst.num_stages() {
                for &u in inst.mapping.procs(i) {
                    assert!((inst.comp_time(i, u) - back.comp_time(i, u)).abs() < 1e-12);
                }
            }
            for i in 0..inst.num_stages() - 1 {
                for &u in inst.mapping.procs(i) {
                    for &v in inst.mapping.procs(i + 1) {
                        assert!((inst.comm_time(i, u, v) - back.comm_time(i, u, v)).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn minimal_document() {
        let text = "workflow v1\nstages 5 10\nfiles 2\nspeeds 1 1 1\nmap 0 0\nmap 1 1 2\n";
        let inst = from_text(text).unwrap();
        assert_eq!(inst.num_stages(), 2);
        assert_eq!(inst.mapping.replica_counts(), vec![1, 2]);
        assert_eq!(inst.comp_time(1, 1), 10.0);
    }

    #[test]
    fn comments_ignored() {
        let text = "# top\nworkflow v1\nstages 1\n# mid\nspeeds 1\nmap 0 0\n";
        assert!(from_text(text).is_ok());
    }

    #[test]
    fn errors_reported() {
        assert_eq!(from_text("nope\n"), Err(TextError::BadHeader));
        assert_eq!(
            from_text("workflow v1\nstages x\n"),
            Err(TextError::BadLine(2))
        );
        assert_eq!(
            from_text("workflow v1\nspeeds 1\nmap 0 0\n"),
            Err(TextError::Missing("stages"))
        );
        // out-of-order map lines
        let text = "workflow v1\nstages 1 1\nfiles 1\nspeeds 1 1\nmap 1 1\nmap 0 0\n";
        assert!(from_text(text).is_ok(), "sorted internally");
        let text = "workflow v1\nstages 1 1\nfiles 1\nspeeds 1 1\nmap 0 0\nmap 2 1\n";
        assert!(matches!(from_text(text), Err(TextError::Missing(_))));
    }

    #[test]
    fn diamond_round_trip() {
        let pipeline = Pipeline::from_edges(
            vec![4.0, 6.0, 5.0, 3.0],
            vec![(0, 1, 2.0), (0, 2, 3.0), (1, 3, 1.0), (2, 3, 2.5)],
        )
        .unwrap();
        let platform = crate::model::Platform::uniform(5, 1.0, 1.0);
        let mapping = Mapping::new(vec![vec![0], vec![1, 2], vec![3], vec![4]]).unwrap();
        let inst = Instance::new(pipeline, platform, mapping).unwrap();
        let text = to_text(&inst);
        assert!(text.contains("edge 0 1 2"), "DAGs serialize as edge lines:\n{text}");
        assert!(!text.contains("\nfiles"), "no files line for a DAG");
        let back = from_text(&text).unwrap();
        assert_eq!(inst.pipeline, back.pipeline);
        assert_eq!(inst.mapping, back.mapping);
    }

    #[test]
    fn chain_serialization_unchanged_and_edge_files_exclusive() {
        // A chain still uses the compact `files` line.
        let text = to_text(&example_a());
        assert!(text.contains("\nfiles "));
        assert!(!text.contains("\nedge "));
        // Mixing `files` and `edge` is rejected.
        let bad =
            "workflow v1\nstages 1 1\nfiles 1\nedge 0 1 1\nspeeds 1 1\nmap 0 0\nmap 1 1\n";
        assert!(matches!(from_text(bad), Err(TextError::Missing(_))));
    }

    #[test]
    fn model_errors_surface() {
        // processor reused across stages
        let text = "workflow v1\nstages 1 1\nfiles 1\nspeeds 1 1\nmap 0 0\nmap 1 0\n";
        assert!(matches!(from_text(text), Err(TextError::Model(ModelError::ProcessorReused(0)))));
    }
}
