//! The paper's running examples.
//!
//! * **Example A** (Fig. 2): 4 stages on 7 processors, `S1` replicated ×2 and
//!   `S2` ×3. Published values: overlap period `P̂ = 189` (critical resource:
//!   `P0`'s out-port); strict `M_ct = 215.8` (at `P2`) and `P̂ = 230.7` with
//!   *no* critical resource.
//! * **Example B** (Fig. 6): 2 stages, `S0` ×3 and `S1` ×4, transfer times
//!   in {100, 1000}. Published values (overlap): `M_ct = 258.3` (out-port of
//!   `P2`), `P̂ = 291.7` — no critical resource.
//! * **Example C** (Fig. 11): 4 stages replicated (5, 21, 27, 11)-fold,
//!   used for the pattern decomposition `(g, u, v, c) = (3, 7, 9, 55)` on
//!   the `F_1` column with `m = 10395`.
//!
//! The source PDF's figure labels are partly unreadable; the 18 numeric
//! labels of Example A and the {100, 1000} structure of Example B were
//! recovered by constrained search against the published periods (see
//! `repwf-bench`, bins `reconstruct_example_a` / `reconstruct_example_b`,
//! and DESIGN.md §4).

use crate::model::{Instance, Mapping, Pipeline, Platform};

/// Builds Example A. Processors: `P0` runs `S0`, `{P1, P2}` run `S1`,
/// `{P3, P4, P5}` run `S2`, `P6` runs `S3`. All speeds are 1 and bandwidths
/// are the reciprocal of the intended transfer time, so the figure's labels
/// *are* the times.
pub fn example_a() -> Instance {
    // Stage works (speeds are 1, so works are the computation times).
    let w = [22.0, 0.0, 0.0, 67.0]; // S1/S2 works set via per-proc speeds below
    // Per-processor computation times for the replicated stages
    // (recovered assignment; reproduces every published value exactly).
    let comp_p1 = 165.0;
    let comp_p2 = 147.0;
    let comp_p3 = 157.0;
    let comp_p4 = 57.0;
    let comp_p5 = 13.0;
    // Transfer times (recovered assignment).
    let t01 = 192.0; // P0 → P1
    let t02 = 186.0; // P0 → P2
    let t_p1 = [126.0, 23.0, 68.0]; // P1 → P3, P4, P5
    let t_p2 = [146.0, 73.0, 77.0]; // P2 → P3, P4, P5
    let t_out = [128.0, 73.0, 104.0]; // P3, P4, P5 → P6

    // Works: pick w1, w2 = 1 and encode per-proc times through speeds.
    let pipeline = Pipeline::new(vec![w[0], 1.0, 1.0, w[3]], vec![1.0, 1.0, 1.0]).unwrap();
    let mut platform = Platform::uniform(7, 1.0, 1.0);
    platform.set_speed(1, 1.0 / comp_p1);
    platform.set_speed(2, 1.0 / comp_p2);
    platform.set_speed(3, 1.0 / comp_p3);
    platform.set_speed(4, 1.0 / comp_p4);
    platform.set_speed(5, 1.0 / comp_p5);
    platform.set_bandwidth(0, 1, 1.0 / t01);
    platform.set_bandwidth(0, 2, 1.0 / t02);
    for (k, &t) in t_p1.iter().enumerate() {
        platform.set_bandwidth(1, 3 + k, 1.0 / t);
    }
    for (k, &t) in t_p2.iter().enumerate() {
        platform.set_bandwidth(2, 3 + k, 1.0 / t);
    }
    for (k, &t) in t_out.iter().enumerate() {
        platform.set_bandwidth(3 + k, 6, 1.0 / t);
    }
    let mapping = Mapping::new(vec![vec![0], vec![1, 2], vec![3, 4, 5], vec![6]]).unwrap();
    Instance::new(pipeline, platform, mapping).unwrap()
}

/// Builds Example B: `S0` on `{P0, P1, P2}`, `S1` on `{P3, P4, P5, P6}`,
/// computation times 100 everywhere, transfer times in {100, 1000}
/// (recovered assignment: `P2` sends three 1000s and one 100, which makes
/// its out-port the critical resource at `M_ct = 3100/12 = 258.33` while
/// the actual period is `3500/12 = 291.67`).
pub fn example_b() -> Instance {
    // times[s][r]: transfer time from sender s (P0..P2) to receiver P3+r.
    let times = example_b_times();
    let pipeline = Pipeline::new(vec![300.0, 400.0], vec![1.0]).unwrap();
    let mut platform = Platform::uniform(7, 1.0, 1.0);
    // comp time 100 per data set handled: S0 work 300 / speed 3? Simpler:
    // set speeds so w/Π = 100: Π = 300/100 = 3 for S0 procs, 400/100 = 4.
    for u in 0..3 {
        platform.set_speed(u, 3.0);
    }
    for u in 3..7 {
        platform.set_speed(u, 4.0);
    }
    for (s, row) in times.iter().enumerate() {
        for (r, &t) in row.iter().enumerate() {
            platform.set_bandwidth(s, 3 + r, 1.0 / t);
        }
    }
    let mapping = Mapping::new(vec![vec![0, 1, 2], vec![3, 4, 5, 6]]).unwrap();
    Instance::new(pipeline, platform, mapping).unwrap()
}

/// The recovered transfer-time matrix of Example B (senders × receivers).
pub fn example_b_times() -> [[f64; 4]; 3] {
    // Exhaustive search over all {100,1000} matrices (see the
    // `reconstruct_example_b` bin) yields 68 matrices reproducing the
    // published (M_ct, period); this one also matches Figure 10's count of
    // seven 1000-labels and five 100-labels.
    [
        [1000.0, 100.0, 100.0, 1000.0],
        [100.0, 100.0, 1000.0, 1000.0],
        [1000.0, 1000.0, 1000.0, 100.0],
    ]
}

/// Builds Example C: stages replicated (5, 21, 27, 11)-fold on 64
/// processors. The paper uses it only for the decomposition structure, so
/// times are deterministic pseudo-random values in [5, 15].
pub fn example_c() -> Instance {
    let replicas = [5usize, 21, 27, 11];
    let p: usize = replicas.iter().sum();
    let pipeline = Pipeline::new(vec![10.0; 4], vec![10.0; 3]).unwrap();
    let mut platform = Platform::uniform(p, 1.0, 1.0);
    // Deterministic splitmix-style jitter for heterogeneity.
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        5.0 + 10.0 * (z >> 11) as f64 / (1u64 << 53) as f64
    };
    for u in 0..p {
        platform.set_speed(u, 10.0 / next()); // comp time in [5, 15]
    }
    for u in 0..p {
        for v in 0..p {
            platform.set_bandwidth(u, v, 10.0 / next()); // comm time in [5, 15]
        }
    }
    let mut start = 0;
    let assignment: Vec<Vec<usize>> = replicas
        .iter()
        .map(|&m| {
            let procs: Vec<usize> = (start..start + m).collect();
            start += m;
            procs
        })
        .collect();
    Instance::new(pipeline, platform, Mapping::new(assignment).unwrap()).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CommModel;
    use crate::paths::instance_num_paths;

    #[test]
    fn example_a_shape() {
        let a = example_a();
        assert_eq!(a.num_stages(), 4);
        assert_eq!(a.mapping.replica_counts(), vec![1, 2, 3, 1]);
        assert_eq!(instance_num_paths(&a), Some(6));
    }

    #[test]
    fn example_a_overlap_period_is_189() {
        let a = example_a();
        let r = crate::period::compute_period(&a, CommModel::Overlap, crate::period::Method::Auto)
            .unwrap();
        assert!((r.period - 189.0).abs() < 1e-9, "got {}", r.period);
        // The critical resource is P0's out-port: (186 + 192) / 2.
        assert!((r.mct - 189.0).abs() < 1e-9);
    }

    #[test]
    fn example_a_uses_exactly_the_figure_labels() {
        // The 18 numeric labels of Fig. 2, with 73 appearing twice.
        let a = example_a();
        let mut times = vec![
            a.comp_time(0, 0),
            a.comp_time(1, 1),
            a.comp_time(1, 2),
            a.comp_time(2, 3),
            a.comp_time(2, 4),
            a.comp_time(2, 5),
            a.comp_time(3, 6),
            a.comm_time(0, 0, 1),
            a.comm_time(0, 0, 2),
        ];
        for r in 3..6 {
            times.push(a.comm_time(1, 1, r));
            times.push(a.comm_time(1, 2, r));
            times.push(a.comm_time(2, r, 6));
        }
        let mut got: Vec<i64> = times.iter().map(|t| t.round() as i64).collect();
        got.sort_unstable();
        let mut expected =
            vec![147, 22, 104, 146, 23, 73, 128, 73, 77, 68, 13, 57, 157, 67, 126, 165, 186, 192];
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn example_a_strict_values() {
        // Published: M_ct = 215.8 at P2, period 230.7, no critical resource.
        let a = example_a();
        let (mct, who) = crate::cycle_time::max_cycle_time(&a, CommModel::Strict);
        assert!((mct - 1295.0 / 6.0).abs() < 1e-9, "mct {mct}");
        assert_eq!(who.proc, 2);
        let r = crate::period::compute_period(&a, CommModel::Strict, crate::period::Method::FullTpn)
            .unwrap();
        assert!((r.period - 1384.0 / 6.0).abs() < 1e-9, "period {}", r.period);
        assert!(!r.has_critical_resource(1e-9));
    }

    #[test]
    fn example_b_shape_and_mct() {
        let b = example_b();
        assert_eq!(instance_num_paths(&b), Some(12));
        let (mct, who) = crate::cycle_time::max_cycle_time(&b, CommModel::Overlap);
        assert!((mct - 3100.0 / 12.0).abs() < 1e-9, "mct {mct}");
        assert_eq!(who.proc, 2);
    }

    #[test]
    fn example_b_overlap_period_exceeds_mct() {
        // Published: period 291.7 = 3500/12 with M_ct = 258.3 = 3100/12 —
        // every resource idles during each period.
        let b = example_b();
        let r = crate::period::compute_period(&b, CommModel::Overlap, crate::period::Method::Auto)
            .unwrap();
        assert!((r.period - 3500.0 / 12.0).abs() < 1e-9, "period {}", r.period);
        assert!((r.mct - 3100.0 / 12.0).abs() < 1e-9);
        assert!(!r.has_critical_resource(1e-9));
    }

    #[test]
    fn example_c_shape() {
        let c = example_c();
        assert_eq!(c.mapping.replica_counts(), vec![5, 21, 27, 11]);
        assert_eq!(instance_num_paths(&c), Some(10395));
    }
}
