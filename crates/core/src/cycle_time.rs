//! Per-resource cycle-times and the `M_ct` lower bound.
//!
//! The *cycle-time* `C_exec(u)` of a processor is the average time per data
//! set it spends busy, in steady state. For the overlap model the
//! sub-resources (one in-port per in-edge, CPU, one out-port per out-edge)
//! work concurrently, so `C_exec = max(max_e C_in(e), C_comp, max_e
//! C_out(e))`; for the strict model they serialize:
//! `C_exec = Σ_e C_in(e) + C_comp + Σ_e C_out(e)`. On a linear chain (one in-edge, one
//! out-edge) both reduce to the paper's `max(C_in, C_comp, C_out)` /
//! `C_in + C_comp + C_out`. The maximum cycle-time
//! `M_ct = max_u C_exec(u)` is a lower bound of the period for both models,
//! and *equals* the period when no stage is replicated.
//!
//! All quantities are **per data set** (the paper's normalization: a
//! processor replicated `m_i`-fold only serves every `m_i`-th data set, so
//! its raw busy time is divided by the global data-set rate).

use crate::model::{CommModel, Instance, InstanceView, ProcId, StageId};
use crate::paths::lcm;

/// The cycle-time decomposition of one mapped processor.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleTime {
    /// The processor.
    pub proc: ProcId,
    /// The stage it runs.
    pub stage: StageId,
    /// Its position in the stage's round-robin order.
    pub replica_index: usize,
    /// Total per-data-set reception time `C_in`, summed over in-edges
    /// (0 for the source stage).
    pub c_in: f64,
    /// Average per-data-set computation time `C_comp`.
    pub c_comp: f64,
    /// Total per-data-set emission time `C_out`, summed over out-edges
    /// (0 for the sink stage).
    pub c_out: f64,
    /// Largest single in-edge average — the busiest in-port. Equals
    /// [`CycleTime::c_in`] on a chain (at most one in-edge).
    pub c_in_peak: f64,
    /// Largest single out-edge average — the busiest out-port. Equals
    /// [`CycleTime::c_out`] on a chain (at most one out-edge).
    pub c_out_peak: f64,
}

impl CycleTime {
    /// `C_exec` under the given communication model. Overlap: each port
    /// works concurrently, so the busiest single port bounds the rate;
    /// strict: every transfer serializes with the computation.
    pub fn exec(&self, model: CommModel) -> f64 {
        match model {
            CommModel::Overlap => self.c_in_peak.max(self.c_comp).max(self.c_out_peak),
            CommModel::Strict => self.c_in + self.c_comp + self.c_out,
        }
    }
}

/// The set of sender replicas of the edge's source stage that feed
/// replica `β` of its destination stage (round-robin compatibility: rows
/// `j ≡ β (mod m_cur)` have sender `j mod m_prev`), together with how
/// often the full sender cycle repeats.
///
/// Returns `(sender_indices, period L = lcm(m_prev, m_i))`: over `L`
/// consecutive data sets, replica `β` receives `L/m_i` files, one from each
/// listed sender.
pub fn partner_residues(m_prev: usize, m_cur: usize, beta: usize) -> (Vec<usize>, u64) {
    let l = lcm(m_prev as u128, m_cur as u128).expect("small lcm") as u64;
    let count = (l / m_cur as u64) as usize;
    let senders = (0..count).map(|k| (beta + k * m_cur) % m_prev).collect();
    (senders, l)
}

/// Computes the cycle-time decomposition of the replicas of one stage into
/// a caller-owned buffer (cleared first) — the per-stage primitive behind
/// [`cycle_times_view`] and the incremental [`MctCache`]. A stage's
/// decomposition depends only on its own processor list and those of its
/// DAG neighbors (the round-robin partners on its in- and out-edges).
pub fn stage_cycle_times_into(v: InstanceView<'_>, i: StageId, out: &mut Vec<CycleTime>) {
    out.clear();
    let wf = v.pipeline;
    let procs = v.mapping.procs(i);
    let m_i = procs.len();
    for (beta, &u) in procs.iter().enumerate() {
        let c_comp = v.comp_time(i, u) / m_i as f64;
        let mut c_in = 0.0f64;
        let mut c_in_peak = 0.0f64;
        for &e in wf.in_edges(i) {
            let (src, _) = wf.edge(e);
            let prev = v.mapping.procs(src);
            let (senders, l) = partner_residues(prev.len(), m_i, beta);
            let total: f64 = senders.iter().map(|&a| v.comm_time(e, prev[a], u)).sum();
            let avg = total / l as f64;
            c_in += avg;
            c_in_peak = c_in_peak.max(avg);
        }
        let mut c_out = 0.0f64;
        let mut c_out_peak = 0.0f64;
        for &e in wf.out_edges(i) {
            let (_, dst) = wf.edge(e);
            let next = v.mapping.procs(dst);
            let (receivers, l) = partner_residues(next.len(), m_i, beta);
            let total: f64 = receivers.iter().map(|&b| v.comm_time(e, u, next[b])).sum();
            let avg = total / l as f64;
            c_out += avg;
            c_out_peak = c_out_peak.max(avg);
        }
        out.push(CycleTime {
            proc: u,
            stage: i,
            replica_index: beta,
            c_in,
            c_comp,
            c_out,
            c_in_peak,
            c_out_peak,
        });
    }
}

/// Lower bound on the `M_ct` (hence on the period) of **any completion**
/// of a partially-assigned mapping: stages `0..prefix.len()` carry their
/// final ordered replica tuples, later stages are still open. (Stage ids
/// are a topological order, so every in-edge of a prefix stage comes from
/// another prefix stage.)
///
/// Every cycle-time component that is already determined by the prefix —
/// `C_comp` of every assigned replica, `C_in` on every in-edge,
/// `C_out` on out-edges whose destination is inside the prefix — is
/// computed exactly as [`stage_cycle_times_into`] would; components that
/// depend on an unassigned neighbor (out-edges crossing the prefix
/// boundary) are bounded below by `0`, which is valid under both models
/// (`max` over fewer terms, `sum` with dropped non-negative terms). The
/// result therefore never exceeds the `M_ct` of any full mapping
/// extending the prefix, and equals it bit-for-bit when `prefix` covers
/// the whole workflow.
///
/// An invalid prefix resource (zero/negative speed or bandwidth) yields an
/// infinite bound: every completion inherits the invalid resource and is
/// rejected by validation, so callers may prune such prefixes outright.
pub fn prefix_cycle_bound(
    pipeline: &crate::model::Pipeline,
    platform: &crate::model::Platform,
    prefix: &[Vec<ProcId>],
    model: CommModel,
) -> f64 {
    let k = prefix.len();
    let mut worst = 0.0f64;
    for (i, procs) in prefix.iter().enumerate() {
        let m_i = procs.len();
        for (beta, &u) in procs.iter().enumerate() {
            let c_comp = pipeline.work(i) / platform.speed(u) / m_i as f64;
            let mut c_in = 0.0f64;
            let mut c_in_peak = 0.0f64;
            for &e in pipeline.in_edges(i) {
                let (src, _) = pipeline.edge(e);
                let prev = &prefix[src];
                let (senders, l) = partner_residues(prev.len(), m_i, beta);
                let total: f64 = senders
                    .iter()
                    .map(|&a| pipeline.file(e) / platform.bandwidth(prev[a], u))
                    .sum();
                let avg = total / l as f64;
                c_in += avg;
                c_in_peak = c_in_peak.max(avg);
            }
            // Out-edges crossing the prefix boundary have unknown
            // partners: bound their contribution by 0.
            let mut c_out = 0.0f64;
            let mut c_out_peak = 0.0f64;
            for &e in pipeline.out_edges(i) {
                let (_, dst) = pipeline.edge(e);
                if dst >= k {
                    continue;
                }
                let next = &prefix[dst];
                let (receivers, l) = partner_residues(next.len(), m_i, beta);
                let total: f64 = receivers
                    .iter()
                    .map(|&b| pipeline.file(e) / platform.bandwidth(u, next[b]))
                    .sum();
                let avg = total / l as f64;
                c_out += avg;
                c_out_peak = c_out_peak.max(avg);
            }
            let ct = CycleTime {
                proc: u,
                stage: i,
                replica_index: beta,
                c_in,
                c_comp,
                c_out,
                c_in_peak,
                c_out_peak,
            };
            worst = worst.max(ct.exec(model));
        }
    }
    worst
}

/// Computes the cycle-time decomposition of every mapped processor of a
/// borrowed view.
pub fn cycle_times_view(v: InstanceView<'_>) -> Vec<CycleTime> {
    let n = v.num_stages();
    let mut out = Vec::new();
    let mut stage = Vec::new();
    for i in 0..n {
        stage_cycle_times_into(v, i, &mut stage);
        out.append(&mut stage);
    }
    out
}

/// Computes the cycle-time decomposition of every mapped processor.
pub fn cycle_times(inst: &Instance) -> Vec<CycleTime> {
    cycle_times_view(inst.view())
}

/// The maximum cycle-time `M_ct` of a borrowed view and the processor
/// attaining it.
pub fn max_cycle_time_view(v: InstanceView<'_>, model: CommModel) -> (f64, CycleTime) {
    let all = cycle_times_view(v);
    let best = all
        .into_iter()
        .max_by(|a, b| a.exec(model).partial_cmp(&b.exec(model)).expect("finite cycle times"))
        .expect("instance has at least one stage and processor");
    (best.exec(model), best)
}

/// The maximum cycle-time `M_ct` and the processor attaining it.
pub fn max_cycle_time(inst: &Instance, model: CommModel) -> (f64, CycleTime) {
    max_cycle_time_view(inst.view(), model)
}

/// Incremental `M_ct` tracker for a mapping search: caches the per-stage
/// cycle-time decompositions and, on each call, recomputes only the stages
/// whose processor lists changed since the previous call — plus their
/// DAG neighbors (in-edge sources and out-edge destinations), whose
/// `C_in`/`C_out` depend on the partners there. On a chain, a swap move
/// touches two stages, so an evaluation re-examines at most six of them
/// instead of rescanning every mapped processor.
///
/// **Contract:** one cache serves one fixed pipeline/platform pair (the
/// [`crate::engine::MappingOracle`] session guarantee) — only the
/// *mapping* may vary between calls. The communication model may vary
/// freely: the cached decompositions are model-independent.
///
/// Results are bit-for-bit those of [`max_cycle_time_view`], including the
/// tie-breaking choice of the critical processor (the *last* maximum in
/// stage-major slot order, matching `Iterator::max_by`); debug builds
/// cross-check every call against the full rescan.
#[derive(Debug, Clone, Default)]
pub struct MctCache {
    /// Cached per-stage decompositions (slot-major), valid for `prev`.
    times: Vec<Vec<CycleTime>>,
    /// The per-stage processor lists the cache was computed against.
    prev: Vec<Vec<ProcId>>,
    /// Scratch: which stages' processor lists changed since `prev`.
    changed: Vec<bool>,
    /// Total per-stage recomputations performed (diagnostics: tests assert
    /// locality through this).
    stage_recomputes: u64,
    /// Total evaluations served.
    evals: u64,
}

impl MctCache {
    /// An empty cache (the first evaluation recomputes every stage).
    pub fn new() -> Self {
        MctCache::default()
    }

    /// Drops every cached decomposition: the next call recomputes all
    /// stages. Required if the pipeline or platform behind the views ever
    /// changes (see the type-level contract).
    pub fn invalidate(&mut self) {
        self.prev.clear();
        self.times.clear();
    }

    /// Number of per-stage recomputations performed over the cache's
    /// lifetime. A full rescan costs `num_stages` of these; a cached
    /// evaluation after a swap costs at most six.
    pub fn stage_recomputes(&self) -> u64 {
        self.stage_recomputes
    }

    /// Number of evaluations served.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// The maximum cycle-time `M_ct` of `v` and the processor attaining
    /// it, recomputing only the stages touched since the previous call.
    pub fn max_cycle_time(&mut self, v: InstanceView<'_>, model: CommModel) -> (f64, CycleTime) {
        self.evals += 1;
        let n = v.num_stages();
        let full = self.prev.len() != n;
        if full {
            self.prev.resize(n, Vec::new());
            self.times.resize(n, Vec::new());
        }
        self.changed.clear();
        self.changed.resize(n, false);
        for i in 0..n {
            self.changed[i] = full || self.prev[i][..] != *v.mapping.procs(i);
        }
        let wf = v.pipeline;
        let mut recomputed = 0u64;
        for i in 0..n {
            let dirty = self.changed[i]
                || wf.in_edges(i).iter().any(|&e| self.changed[wf.edge(e).0])
                || wf.out_edges(i).iter().any(|&e| self.changed[wf.edge(e).1]);
            if dirty {
                stage_cycle_times_into(v, i, &mut self.times[i]);
                self.stage_recomputes += 1;
                recomputed += 1;
            }
            if self.changed[i] {
                self.prev[i].clear();
                self.prev[i].extend_from_slice(v.mapping.procs(i));
            }
        }
        repwf_obs::counter_add(repwf_obs::CounterId::MctEvals, 1);
        repwf_obs::counter_add(repwf_obs::CounterId::MctStageRecomputes, recomputed);
        repwf_obs::counter_add(repwf_obs::CounterId::MctStageHits, n as u64 - recomputed);
        // Scan in the exact order of `max_cycle_time_view` (stage-major,
        // slot order), keeping the LAST maximum on ties like
        // `Iterator::max_by` — bit-identical winner, bit-identical value.
        let mut best: Option<&CycleTime> = None;
        for stage in &self.times {
            for ct in stage {
                if best.is_none_or(|b| ct.exec(model) >= b.exec(model)) {
                    best = Some(ct);
                }
            }
        }
        let best = best.expect("instance has at least one stage and processor").clone();
        let out = (best.exec(model), best);
        debug_assert!(
            {
                let (m, who) = max_cycle_time_view(v, model);
                m.to_bits() == out.0.to_bits() && who == out.1
            },
            "incremental M_ct diverged from the full rescan"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};

    /// Example-B-like shape: stage 0 on 3 procs, stage 1 on 4 procs.
    fn b_like() -> Instance {
        let pipeline = Pipeline::new(vec![300.0, 400.0], vec![1.0]).unwrap();
        let mut platform = Platform::uniform(7, 1.0, 1.0);
        // Make each link distinguishable: b(u,v) = 1/(100·(u+1) + v) so that
        // comm time = 100(u+1) + v.
        for u in 0..3 {
            for v in 3..7 {
                platform.set_bandwidth(u, v, 1.0 / (100.0 * (u as f64 + 1.0) + v as f64));
            }
        }
        let mapping = Mapping::new(vec![vec![0, 1, 2], vec![3, 4, 5, 6]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn partner_residues_all_pairs_when_coprime() {
        // m_prev = 3 senders, m_cur = 4 receivers: receiver β hears from all
        // 3 senders over L = 12 data sets.
        let (senders, l) = partner_residues(3, 4, 0);
        assert_eq!(l, 12);
        assert_eq!(senders, vec![0, 1, 2]);
        let (senders, _) = partner_residues(3, 4, 1);
        assert_eq!(senders, vec![1, 2, 0]);
    }

    #[test]
    fn partner_residues_with_gcd() {
        // m_prev = 4, m_cur = 6, gcd 2: receiver β only hears senders of the
        // same parity.
        let (senders, l) = partner_residues(4, 6, 0);
        assert_eq!(l, 12);
        assert_eq!(senders, vec![0, 2]);
        let (senders, _) = partner_residues(4, 6, 1);
        assert_eq!(senders, vec![1, 3]);
    }

    #[test]
    fn comp_time_divided_by_replicas() {
        let inst = b_like();
        let cts = cycle_times(&inst);
        let p0 = cts.iter().find(|c| c.proc == 0).unwrap();
        assert!((p0.c_comp - 100.0).abs() < 1e-12); // 300 work / 3 replicas
        let p3 = cts.iter().find(|c| c.proc == 3).unwrap();
        assert!((p3.c_comp - 100.0).abs() < 1e-12); // 400 / 4
    }

    #[test]
    fn out_port_averages_over_receivers() {
        let inst = b_like();
        let cts = cycle_times(&inst);
        // P0 (sender index 0) sends rows j ≡ 0 mod 3: receivers j mod 4 =
        // 0,3,2,1 → all four links 103,104,105,106: sum 418 over L=12.
        let p0 = cts.iter().find(|c| c.proc == 0).unwrap();
        assert!((p0.c_out - 418.0 / 12.0).abs() < 1e-12);
        assert_eq!(p0.c_in, 0.0);
    }

    #[test]
    fn in_port_averages_over_senders() {
        let inst = b_like();
        let cts = cycle_times(&inst);
        // P3 (receiver index 0) hears from senders 0,1,2: links 103, 203, 303
        // → sum 609 over L=12.
        let p3 = cts.iter().find(|c| c.proc == 3).unwrap();
        assert!((p3.c_in - 609.0 / 12.0).abs() < 1e-12);
        assert_eq!(p3.c_out, 0.0);
    }

    #[test]
    fn strict_sums_overlap_maxes() {
        let inst = b_like();
        let cts = cycle_times(&inst);
        let p0 = cts.iter().find(|c| c.proc == 0).unwrap();
        assert!((p0.exec(CommModel::Strict) - (100.0 + 418.0 / 12.0)).abs() < 1e-12);
        assert!((p0.exec(CommModel::Overlap) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn mct_cache_matches_full_rescan_under_random_mutations() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let n = 4;
        let p = 9;
        let pipeline =
            Pipeline::new((0..n).map(|_| 1.0 + 9.0 * rng.gen::<f64>()).collect(), vec![1.0; n - 1])
                .unwrap();
        let mut platform = Platform::uniform(p, 1.0, 1.0);
        for u in 0..p {
            platform.set_speed(u, 0.5 + rng.gen::<f64>());
            for v in 0..p {
                platform.set_bandwidth(u, v, 0.3 + rng.gen::<f64>());
            }
        }
        let mut assignment: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        for u in n..p {
            assignment[rng.gen_range(0..n)].push(u);
        }
        let mut cache = MctCache::new();
        for step in 0..200 {
            // Random in-place mutation: usually a swap, sometimes a shift.
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if i != j {
                if rng.gen_range(0..4) == 0 && assignment[i].len() > 1 {
                    let k = rng.gen_range(0..assignment[i].len());
                    let u = assignment[i].remove(k);
                    assignment[j].push(u);
                } else {
                    let ki = rng.gen_range(0..assignment[i].len());
                    let kj = rng.gen_range(0..assignment[j].len());
                    let (a, b) = (assignment[i][ki], assignment[j][kj]);
                    assignment[i][ki] = b;
                    assignment[j][kj] = a;
                }
            }
            let mapping = Mapping::new(assignment.clone()).unwrap();
            let view = InstanceView::new(&pipeline, &platform, &mapping).unwrap();
            // Alternate the model call-to-call: the cached decompositions
            // are model-independent and must serve both.
            let model = if step % 2 == 0 { CommModel::Strict } else { CommModel::Overlap };
            let (inc, who_inc) = cache.max_cycle_time(view, model);
            let (cold, who_cold) = max_cycle_time_view(view, model);
            assert_eq!(inc.to_bits(), cold.to_bits(), "step {step}");
            assert_eq!(who_inc, who_cold, "step {step}");
        }
        assert_eq!(cache.evals(), 200);
        assert!(
            cache.stage_recomputes() < 200 * n as u64,
            "cache never skipped a stage: {} recomputes",
            cache.stage_recomputes()
        );
    }

    #[test]
    fn mct_cache_recomputes_only_touched_stages() {
        // 8 stages, two replicas each; swapping between stages 0 and 1
        // must re-examine exactly stages 0, 1 and 2.
        let n = 8;
        let pipeline = Pipeline::new(vec![4.0; n], vec![1.0; n - 1]).unwrap();
        let mut platform = Platform::uniform(2 * n, 1.0, 1.0);
        for u in 0..2 * n {
            platform.set_speed(u, 1.0 + 0.05 * u as f64);
        }
        let mut assignment: Vec<Vec<usize>> = (0..n).map(|i| vec![2 * i, 2 * i + 1]).collect();
        let mut cache = MctCache::new();
        let view = |a: &[Vec<usize>]| Mapping::new(a.to_vec()).unwrap();
        let m0 = view(&assignment);
        cache.max_cycle_time(InstanceView::new(&pipeline, &platform, &m0).unwrap(), CommModel::Strict);
        assert_eq!(cache.stage_recomputes(), n as u64, "first call recomputes everything");
        for k in 0..10u64 {
            assignment[0].swap(0, 1);
            assignment[1].swap(0, 1);
            let (a, b) = (assignment[0][0], assignment[1][0]);
            assignment[0][0] = b;
            assignment[1][0] = a;
            let m = view(&assignment);
            cache.max_cycle_time(
                InstanceView::new(&pipeline, &platform, &m).unwrap(),
                CommModel::Strict,
            );
            assert_eq!(
                cache.stage_recomputes(),
                n as u64 + 3 * (k + 1),
                "swap between stages 0 and 1 must touch stages 0..=2 only"
            );
        }
        // A stage-count change forces a full recompute.
        cache.invalidate();
        cache.max_cycle_time(InstanceView::new(&pipeline, &platform, &view(&assignment)).unwrap(), CommModel::Overlap);
        assert_eq!(cache.stage_recomputes(), n as u64 + 30 + n as u64);
    }

    #[test]
    fn prefix_bound_full_prefix_equals_mct_bitwise() {
        let inst = b_like();
        for model in [CommModel::Overlap, CommModel::Strict] {
            let (mct, _) = max_cycle_time(&inst, model);
            let bound = prefix_cycle_bound(
                &inst.pipeline,
                &inst.platform,
                inst.mapping.assignment(),
                model,
            );
            assert_eq!(bound.to_bits(), mct.to_bits(), "{model:?}");
        }
    }

    #[test]
    fn prefix_bound_never_exceeds_any_completion() {
        // Prefix = stage 0 only; every way of mapping stage 1 onto the
        // remaining processors must have M_ct (and hence period) at or
        // above the prefix bound.
        let inst = b_like();
        let prefix = vec![vec![0usize, 1, 2]];
        for model in [CommModel::Overlap, CommModel::Strict] {
            let bound = prefix_cycle_bound(&inst.pipeline, &inst.platform, &prefix, model);
            for procs in [vec![3], vec![4, 3], vec![6, 5, 4], vec![3, 4, 5, 6], vec![5]] {
                let mapping = Mapping::new(vec![prefix[0].clone(), procs]).unwrap();
                let v = InstanceView::new(&inst.pipeline, &inst.platform, &mapping).unwrap();
                let (mct, _) = max_cycle_time_view(v, model);
                assert!(bound <= mct + 1e-15, "{model:?}: bound {bound} vs mct {mct}");
            }
        }
    }

    #[test]
    fn prefix_bound_infinite_on_invalid_prefix_link() {
        let inst = b_like();
        let mut platform = inst.platform.clone();
        platform.set_bandwidth(0, 3, 0.0);
        let prefix = vec![vec![0usize], vec![3]];
        let bound =
            prefix_cycle_bound(&inst.pipeline, &platform, &prefix, CommModel::Overlap);
        assert!(bound.is_infinite(), "zero-bandwidth prefix link must blow the bound up");
    }

    #[test]
    fn mct_picks_max() {
        let inst = b_like();
        // P2's links are 301..306-ish, the largest: it should be critical
        // under both models.
        let (_, who) = max_cycle_time(&inst, CommModel::Strict);
        assert_eq!(who.proc, 2);
        let (mct, _) = max_cycle_time(&inst, CommModel::Overlap);
        // P2 out: links 303+304+305+306 = 1218 over 12 = 101.5 > comp 100.
        assert!((mct - 1218.0 / 12.0).abs() < 1e-12);
    }
}
