//! Per-resource cycle-times and the `M_ct` lower bound.
//!
//! The *cycle-time* `C_exec(u)` of a processor is the average time per data
//! set it spends busy, in steady state. For the overlap model the three
//! sub-resources (in-port, CPU, out-port) work concurrently, so
//! `C_exec = max(C_in, C_comp, C_out)`; for the strict model they serialize:
//! `C_exec = C_in + C_comp + C_out`. The maximum cycle-time
//! `M_ct = max_u C_exec(u)` is a lower bound of the period for both models,
//! and *equals* the period when no stage is replicated.
//!
//! All quantities are **per data set** (the paper's normalization: a
//! processor replicated `m_i`-fold only serves every `m_i`-th data set, so
//! its raw busy time is divided by the global data-set rate).

use crate::model::{CommModel, Instance, InstanceView, ProcId, StageId};
use crate::paths::lcm;

/// The cycle-time decomposition of one mapped processor.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleTime {
    /// The processor.
    pub proc: ProcId,
    /// The stage it runs.
    pub stage: StageId,
    /// Its position in the stage's round-robin order.
    pub replica_index: usize,
    /// Average per-data-set reception time `C_in` (0 for the first stage).
    pub c_in: f64,
    /// Average per-data-set computation time `C_comp`.
    pub c_comp: f64,
    /// Average per-data-set emission time `C_out` (0 for the last stage).
    pub c_out: f64,
}

impl CycleTime {
    /// `C_exec` under the given communication model.
    pub fn exec(&self, model: CommModel) -> f64 {
        match model {
            CommModel::Overlap => self.c_in.max(self.c_comp).max(self.c_out),
            CommModel::Strict => self.c_in + self.c_comp + self.c_out,
        }
    }
}

/// The set of senders of stage `i−1` that feed replica `β` of stage `i`
/// (round-robin compatibility: rows `j ≡ β (mod m_i)` have sender
/// `j mod m_{i−1}`), together with how often the full sender cycle repeats.
///
/// Returns `(sender_indices, period L = lcm(m_prev, m_i))`: over `L`
/// consecutive data sets, replica `β` receives `L/m_i` files, one from each
/// listed sender.
pub fn partner_residues(m_prev: usize, m_cur: usize, beta: usize) -> (Vec<usize>, u64) {
    let l = lcm(m_prev as u128, m_cur as u128).expect("small lcm") as u64;
    let count = (l / m_cur as u64) as usize;
    let senders = (0..count).map(|k| (beta + k * m_cur) % m_prev).collect();
    (senders, l)
}

/// Computes the cycle-time decomposition of every mapped processor of a
/// borrowed view.
pub fn cycle_times_view(v: InstanceView<'_>) -> Vec<CycleTime> {
    let n = v.num_stages();
    let mut out = Vec::new();
    for i in 0..n {
        let procs = v.mapping.procs(i);
        let m_i = procs.len();
        for (beta, &u) in procs.iter().enumerate() {
            let c_comp = v.comp_time(i, u) / m_i as f64;
            let c_in = if i == 0 {
                0.0
            } else {
                let prev = v.mapping.procs(i - 1);
                let (senders, l) = partner_residues(prev.len(), m_i, beta);
                let total: f64 = senders.iter().map(|&a| v.comm_time(i - 1, prev[a], u)).sum();
                total / l as f64
            };
            let c_out = if i + 1 == n {
                0.0
            } else {
                let next = v.mapping.procs(i + 1);
                let (receivers, l) = partner_residues(next.len(), m_i, beta);
                let total: f64 = receivers.iter().map(|&b| v.comm_time(i, u, next[b])).sum();
                total / l as f64
            };
            out.push(CycleTime { proc: u, stage: i, replica_index: beta, c_in, c_comp, c_out });
        }
    }
    out
}

/// Computes the cycle-time decomposition of every mapped processor.
pub fn cycle_times(inst: &Instance) -> Vec<CycleTime> {
    cycle_times_view(inst.view())
}

/// The maximum cycle-time `M_ct` of a borrowed view and the processor
/// attaining it.
pub fn max_cycle_time_view(v: InstanceView<'_>, model: CommModel) -> (f64, CycleTime) {
    let all = cycle_times_view(v);
    let best = all
        .into_iter()
        .max_by(|a, b| a.exec(model).partial_cmp(&b.exec(model)).expect("finite cycle times"))
        .expect("instance has at least one stage and processor");
    (best.exec(model), best)
}

/// The maximum cycle-time `M_ct` and the processor attaining it.
pub fn max_cycle_time(inst: &Instance, model: CommModel) -> (f64, CycleTime) {
    max_cycle_time_view(inst.view(), model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Mapping, Pipeline, Platform};

    /// Example-B-like shape: stage 0 on 3 procs, stage 1 on 4 procs.
    fn b_like() -> Instance {
        let pipeline = Pipeline::new(vec![300.0, 400.0], vec![1.0]).unwrap();
        let mut platform = Platform::uniform(7, 1.0, 1.0);
        // Make each link distinguishable: b(u,v) = 1/(100·(u+1) + v) so that
        // comm time = 100(u+1) + v.
        for u in 0..3 {
            for v in 3..7 {
                platform.set_bandwidth(u, v, 1.0 / (100.0 * (u as f64 + 1.0) + v as f64));
            }
        }
        let mapping = Mapping::new(vec![vec![0, 1, 2], vec![3, 4, 5, 6]]).unwrap();
        Instance::new(pipeline, platform, mapping).unwrap()
    }

    #[test]
    fn partner_residues_all_pairs_when_coprime() {
        // m_prev = 3 senders, m_cur = 4 receivers: receiver β hears from all
        // 3 senders over L = 12 data sets.
        let (senders, l) = partner_residues(3, 4, 0);
        assert_eq!(l, 12);
        assert_eq!(senders, vec![0, 1, 2]);
        let (senders, _) = partner_residues(3, 4, 1);
        assert_eq!(senders, vec![1, 2, 0]);
    }

    #[test]
    fn partner_residues_with_gcd() {
        // m_prev = 4, m_cur = 6, gcd 2: receiver β only hears senders of the
        // same parity.
        let (senders, l) = partner_residues(4, 6, 0);
        assert_eq!(l, 12);
        assert_eq!(senders, vec![0, 2]);
        let (senders, _) = partner_residues(4, 6, 1);
        assert_eq!(senders, vec![1, 3]);
    }

    #[test]
    fn comp_time_divided_by_replicas() {
        let inst = b_like();
        let cts = cycle_times(&inst);
        let p0 = cts.iter().find(|c| c.proc == 0).unwrap();
        assert!((p0.c_comp - 100.0).abs() < 1e-12); // 300 work / 3 replicas
        let p3 = cts.iter().find(|c| c.proc == 3).unwrap();
        assert!((p3.c_comp - 100.0).abs() < 1e-12); // 400 / 4
    }

    #[test]
    fn out_port_averages_over_receivers() {
        let inst = b_like();
        let cts = cycle_times(&inst);
        // P0 (sender index 0) sends rows j ≡ 0 mod 3: receivers j mod 4 =
        // 0,3,2,1 → all four links 103,104,105,106: sum 418 over L=12.
        let p0 = cts.iter().find(|c| c.proc == 0).unwrap();
        assert!((p0.c_out - 418.0 / 12.0).abs() < 1e-12);
        assert_eq!(p0.c_in, 0.0);
    }

    #[test]
    fn in_port_averages_over_senders() {
        let inst = b_like();
        let cts = cycle_times(&inst);
        // P3 (receiver index 0) hears from senders 0,1,2: links 103, 203, 303
        // → sum 609 over L=12.
        let p3 = cts.iter().find(|c| c.proc == 3).unwrap();
        assert!((p3.c_in - 609.0 / 12.0).abs() < 1e-12);
        assert_eq!(p3.c_out, 0.0);
    }

    #[test]
    fn strict_sums_overlap_maxes() {
        let inst = b_like();
        let cts = cycle_times(&inst);
        let p0 = cts.iter().find(|c| c.proc == 0).unwrap();
        assert!((p0.exec(CommModel::Strict) - (100.0 + 418.0 / 12.0)).abs() < 1e-12);
        assert!((p0.exec(CommModel::Overlap) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn mct_picks_max() {
        let inst = b_like();
        // P2's links are 301..306-ish, the largest: it should be critical
        // under both models.
        let (_, who) = max_cycle_time(&inst, CommModel::Strict);
        assert_eq!(who.proc, 2);
        let (mct, _) = max_cycle_time(&inst, CommModel::Overlap);
        // P2 out: links 303+304+305+306 = 1218 over 12 = 101.5 > comp 100.
        assert!((mct - 1218.0 / 12.0).abs() < 1e-12);
    }
}
