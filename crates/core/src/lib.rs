//! **repwf-core** — computing the throughput of replicated workflows on
//! heterogeneous platforms.
//!
//! This crate reproduces the system of Benoit, Gallet, Gaujal and Robert,
//! *“Computing the throughput of replicated workflows on heterogeneous
//! platforms”* (ICPP 2009 / LIP RR-2009-08): given a linear-chain streaming
//! application, a fully heterogeneous platform and a mapping that may
//! *replicate* stages over several processors (served in round-robin), it
//! computes the steady-state **period** `P̂` — the time between two
//! consecutive data-set completions — and hence the throughput `1/P̂`.
//!
//! * [`model`] — pipelines, platforms, mappings and the validated
//!   [`model::Instance`] they form.
//! * [`cycle_time`] — per-resource cycle-times and the `M_ct` lower bound
//!   (the period of non-replicated mappings).
//! * [`paths`] — Proposition 1: the `m = lcm(m_0,…,m_{n−1})` distinct paths
//!   followed by the input data.
//! * [`tpn_build`] — §3 of the paper: the timed-Petri-net model of a mapping
//!   for both communication models.
//! * [`overlap_poly`] — Theorem 1: the polynomial algorithm for the
//!   overlap one-port model (no TPN of size `m` ever materialized).
//! * [`period`] — the unified period-computation API.
//! * [`engine`] — the reusable, zero-allocation [`engine::PeriodEngine`]
//!   (TPN build arena + max-plus workspace + warm-started Howard) for hot
//!   loops that evaluate many related instances.
//! * [`batch`] — the shape-batched [`batch::ShapeBatchSolver`]: one TPN
//!   build + one condensation per shape, k instances per Howard pass.
//! * [`fixtures`] — the paper's Examples A, B and C.
//!
//! # Quickstart
//!
//! ```
//! use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
//! use repwf_core::period::{compute_period, Method};
//!
//! // Two stages; the second is twice as heavy and replicated on two procs.
//! let pipeline = Pipeline::new(vec![10.0, 20.0], vec![4.0]).unwrap();
//! let platform = Platform::uniform(3, 1.0, 1.0); // speeds 1, bandwidths 1
//! let mapping = Mapping::new(vec![vec![0], vec![1, 2]]).unwrap();
//! let inst = Instance::new(pipeline, platform, mapping).unwrap();
//! let report = compute_period(&inst, CommModel::Overlap, Method::Auto).unwrap();
//! // Stage 1 takes 20 time units but two processors alternate: 10 per data
//! // set. Stage 0 needs 10 and the file transfer 4: the period is 10.
//! assert!((report.period - 10.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cycle_time;
pub mod diagnose;
pub mod engine;
pub mod fixtures;
pub mod latency;
pub mod model;
pub mod overlap_poly;
pub mod paths;
pub mod period;
pub mod report;
pub mod textfmt;
pub mod tpn_build;
pub mod weighted;

pub use engine::PeriodEngine;
pub use model::{CommModel, Instance, Mapping, ModelError, Pipeline, Platform, ProcId, StageId};
pub use period::{compute_period, Method, PeriodReport};
