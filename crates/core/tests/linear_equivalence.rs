//! The tentpole's non-negotiable invariant, property-tested: on a
//! **linear** workflow, the series-parallel generalization must be
//! invisible. A chain built through the general [`Pipeline::from_edges`]
//! constructor and the same chain built through the legacy
//! [`Pipeline::new`] constructor must be indistinguishable — as values,
//! and through every downstream number: periods, incremental `M_ct`,
//! critical-resource descriptions, and the engine's patched-solve /
//! CSR-build / Tarjan-run counters along a warm neighbor walk, under both
//! communication models. "Identical" means bit-identical, not
//! approximately equal.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use repwf_core::engine::{MappingOracle, PeriodEngine};
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::Method;

/// A deterministic heterogeneous platform with generic values (no ties).
fn platform(p: usize, rng: &mut StdRng) -> Platform {
    let mut platform = Platform::uniform(p, 1.0, 1.0);
    for u in 0..p {
        platform.set_speed(u, 0.6 + rng.gen::<f64>());
        for v in 0..p {
            platform.set_bandwidth(u, v, 0.4 + rng.gen::<f64>());
        }
    }
    platform
}

/// Shape-preserving swap between two random stages (the patch path).
fn random_swap(assignment: &mut [Vec<usize>], rng: &mut StdRng) {
    let n = assignment.len();
    let i = rng.gen_range(0..n);
    let j = rng.gen_range(0..n);
    if i != j {
        let ki = rng.gen_range(0..assignment[i].len());
        let kj = rng.gen_range(0..assignment[j].len());
        let (a, b) = (assignment[i][ki], assignment[j][kj]);
        assignment[i][ki] = b;
        assignment[j][kj] = a;
    }
}

/// Builds a random chain both ways and drives both oracles through the
/// identical mapping walk, asserting bit-identity at every step.
fn check_chain(model: CommModel, seed: u64, moves: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 + (seed as usize % 3); // 2..=4 stages
    let p = n + 3 + (seed as usize % 3);
    let works: Vec<f64> = (0..n).map(|_| 2.0 + 6.0 * rng.gen::<f64>()).collect();
    let files: Vec<f64> = (0..n - 1).map(|_| 1.0 + 3.0 * rng.gen::<f64>()).collect();

    let legacy = Pipeline::new(works.clone(), files.clone()).unwrap();
    let edges: Vec<(usize, usize, f64)> =
        files.iter().enumerate().map(|(k, &size)| (k, k + 1, size)).collect();
    let general = Pipeline::from_edges(works, edges).unwrap();

    // The values themselves are indistinguishable.
    assert_eq!(legacy, general, "seed {seed}: constructors disagree on the chain");
    assert!(general.is_linear());

    let platform = platform(p, &mut rng);
    let mut assignment: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    for u in n..p {
        assignment[rng.gen_range(0..n)].push(u);
    }

    let mut oracle_legacy = MappingOracle::new(&legacy, &platform).warm_start(true);
    let mut oracle_general = MappingOracle::new(&general, &platform).warm_start(true);
    for step in 0..moves {
        random_swap(&mut assignment, &mut rng);
        let mapping = Mapping::new(assignment.clone()).expect("swaps preserve validity");
        let a = oracle_legacy.compute(&mapping, model, Method::FullTpn).unwrap();
        let b = oracle_general.compute(&mapping, model, Method::FullTpn).unwrap();
        assert_eq!(
            a.period.to_bits(),
            b.period.to_bits(),
            "{model} seed {seed} step {step}: legacy {} vs general {}",
            a.period,
            b.period
        );
        assert_eq!(a.mct.to_bits(), b.mct.to_bits(), "{model} seed {seed} step {step}");
        assert_eq!(a.num_paths, b.num_paths);
        assert_eq!(a.critical, b.critical, "{model} seed {seed} step {step}");

        // The simple-path periods must agree too (auto routing included).
        let inst_a = Instance::new(legacy.clone(), platform.clone(), mapping.clone()).unwrap();
        let inst_b = Instance::new(general.clone(), platform.clone(), mapping).unwrap();
        let pa = PeriodEngine::new().compute(&inst_a, model, Method::Auto).unwrap();
        let pb = PeriodEngine::new().compute(&inst_b, model, Method::Auto).unwrap();
        assert_eq!(pa.period.to_bits(), pb.period.to_bits());
        assert_eq!(pa.method, pb.method, "auto must route both chains identically");
    }

    // The engines took the exact same patch/rebuild decisions: the general
    // chain must not cost a single extra CSR build or Tarjan run.
    let (ea, eb) = (oracle_legacy.into_engine(), oracle_general.into_engine());
    assert!(ea.patched_solves() > 0, "{model} seed {seed}: walk never patched");
    assert_eq!(ea.patched_solves(), eb.patched_solves(), "{model} seed {seed}");
    assert_eq!(ea.csr_builds(), eb.csr_builds(), "{model} seed {seed}");
    assert_eq!(ea.tarjan_runs(), eb.tarjan_runs(), "{model} seed {seed}");
}

#[test]
fn chain_walks_are_bit_identical_across_constructors() {
    for model in [CommModel::Overlap, CommModel::Strict] {
        for seed in 0..4 {
            check_chain(model, seed, 24);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_chains_are_bit_identical_across_constructors(seed in 0u64..1024, strict in 0u8..2) {
        let model = if strict == 1 { CommModel::Strict } else { CommModel::Overlap };
        check_chain(model, seed, 8);
    }
}
