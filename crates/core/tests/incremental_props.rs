//! Property tests of the incremental mapping oracle: a warm, patch-enabled
//! engine fed a random walk of neighbor mappings must agree **bit for
//! bit** with a cold engine that rebuilds the TPN from scratch at every
//! step — for both communication models, across shape-preserving moves
//! (swaps: the patch path) and shape-changing moves (add/remove/shift: the
//! rebuild fallback), interleaved arbitrarily. The comparison covers the
//! period, the incremental `M_ct` (the oracle's `MctCache` vs. the cold
//! engine's full rescan) and the critical-resource description, and the
//! workspace counters pin that every patched solve was structurally free:
//! zero CSR builds, zero Tarjan runs.
//!
//! "Bit for bit" is exact: the patched TPN and re-weighted cycle-ratio
//! graph are required to be indistinguishable from freshly built ones, and
//! warm starts recompute the reported ratio exactly from the witness
//! circuit (costs here are generic random values, so critical circuits are
//! unique and eps-ties do not arise).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use repwf_core::engine::{MappingOracle, PeriodEngine};
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::Method;

/// A deterministic heterogeneous platform: every speed and bandwidth is a
/// distinct "generic" value, so no two circuits tie.
fn platform(p: usize, rng: &mut StdRng) -> Platform {
    let mut platform = Platform::uniform(p, 1.0, 1.0);
    for u in 0..p {
        platform.set_speed(u, 0.6 + rng.gen::<f64>());
        for v in 0..p {
            platform.set_bandwidth(u, v, 0.4 + rng.gen::<f64>());
        }
    }
    platform
}

/// Applies one random neighbor move in place: mostly swaps (the patch
/// path), sometimes a shift/add/remove (shape change → rebuild fallback).
fn random_move(assignment: &mut [Vec<usize>], p: usize, rng: &mut StdRng) {
    let n = assignment.len();
    let used: Vec<usize> = assignment.iter().flatten().copied().collect();
    let unused: Vec<usize> = (0..p).filter(|u| !used.contains(u)).collect();
    match rng.gen_range(0..10) {
        // shift a replica between stages
        0 => {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j && assignment[i].len() > 1 {
                let k = rng.gen_range(0..assignment[i].len());
                let u = assignment[i].remove(k);
                assignment[j].push(u);
            }
        }
        // add an unused processor
        1 => {
            if let Some(&u) = unused.first() {
                assignment[rng.gen_range(0..n)].push(u);
            }
        }
        // remove a replica
        2 => {
            let i = rng.gen_range(0..n);
            if assignment[i].len() > 1 {
                let k = rng.gen_range(0..assignment[i].len());
                assignment[i].remove(k);
            }
        }
        // swap two slots (shape-preserving: the patch path)
        _ => {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                let ki = rng.gen_range(0..assignment[i].len());
                let kj = rng.gen_range(0..assignment[j].len());
                let (a, b) = (assignment[i][ki], assignment[j][kj]);
                assignment[i][ki] = b;
                assignment[j][kj] = a;
            }
        }
    }
}

/// Runs a `moves`-step walk and checks every step bitwise against a cold
/// rebuild. Returns the number of patched solves the incremental engine
/// reported (so callers can assert the patch path was truly exercised).
fn check_walk(model: CommModel, seed: u64, moves: usize) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 + (seed as usize % 2); // 2 or 3 stages
    let p = n + 3 + (seed as usize % 3);
    let pipeline = Pipeline::new(
        (0..n).map(|_| 2.0 + 6.0 * rng.gen::<f64>()).collect(),
        (0..n - 1).map(|_| 1.0 + 3.0 * rng.gen::<f64>()).collect(),
    )
    .unwrap();
    let platform = platform(p, &mut rng);
    // Base assignment: stage i starts with one replica, the rest sprinkled.
    let mut assignment: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    for u in n..p {
        assignment[rng.gen_range(0..n)].push(u);
    }

    let mut oracle = MappingOracle::new(&pipeline, &platform).warm_start(true);
    for step in 0..moves {
        random_move(&mut assignment, p, &mut rng);
        let mapping = Mapping::new(assignment.clone()).expect("moves preserve validity");
        let incremental = oracle
            .compute(&mapping, model, Method::FullTpn)
            .expect("walk instances stay under the size cap");
        let inst =
            Instance::new(pipeline.clone(), platform.clone(), mapping).expect("valid triple");
        let cold = PeriodEngine::new()
            .compute(&inst, model, Method::FullTpn)
            .expect("cold solve succeeds");
        assert_eq!(
            incremental.period.to_bits(),
            cold.period.to_bits(),
            "{model} seed {seed} step {step}: incremental {} vs cold {}",
            incremental.period,
            cold.period
        );
        assert_eq!(incremental.mct.to_bits(), cold.mct.to_bits());
        assert_eq!(incremental.num_paths, cold.num_paths);
        assert_eq!(incremental.critical, cold.critical, "{model} seed {seed} step {step}");
    }
    assert_eq!(oracle.mct_cache().evals(), moves as u64);
    let engine = oracle.into_engine();
    let patched = engine.patched_solves();
    assert!(patched > 0, "{model} seed {seed}: walk never exercised the patch path");
    // Every solve is a full-TPN solve; rebuild solves condense exactly
    // once, patched solves must not touch the structure at all.
    assert_eq!(
        engine.csr_builds(),
        moves as u64 - patched,
        "{model} seed {seed}: a patched solve built a CSR"
    );
    assert_eq!(
        engine.tarjan_runs(),
        moves as u64 - patched,
        "{model} seed {seed}: a patched solve ran Tarjan"
    );
    patched
}

/// ~1k-move deterministic walk per model (the satellite's headline check).
#[test]
fn thousand_move_walk_is_bit_identical_to_cold_rebuilds() {
    for model in [CommModel::Overlap, CommModel::Strict] {
        let mut patched = 0;
        for seed in 0..4 {
            patched += check_walk(model, seed, 250);
        }
        // Swaps dominate the move mix: most of the 1000 steps must patch.
        assert!(patched >= 500, "{model}: only {patched} patched solves in 1000 moves");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_walks_are_bit_identical_to_cold_rebuilds(seed in 0u64..1024, strict in 0u8..2) {
        let model = if strict == 1 { CommModel::Strict } else { CommModel::Overlap };
        check_walk(model, seed, 12);
    }
}
