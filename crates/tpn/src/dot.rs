//! Graphviz (DOT) export of timed event graphs.
//!
//! Used to regenerate the paper's TPN figures (Figs. 3–5 and 8–10):
//! transitions render as boxes labelled with their firing time, places as
//! small circles holding their token count, and an optional critical circuit
//! is highlighted in red.

use crate::net::{TimedEventGraph, TransitionId};
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Transitions to highlight (e.g. the critical circuit).
    pub highlight: Vec<TransitionId>,
    /// Graph title.
    pub title: String,
    /// Lay rows out left-to-right (`rankdir=LR`).
    pub left_to_right: bool,
}

/// Renders the net as a DOT digraph string.
pub fn to_dot(net: &TimedEventGraph, opts: &DotOptions) -> String {
    let mut out = String::new();
    let highlight: Vec<bool> = {
        let mut h = vec![false; net.num_transitions()];
        for t in &opts.highlight {
            h[t.0 as usize] = true;
        }
        h
    };
    let _ = writeln!(out, "digraph tpn {{");
    if opts.left_to_right {
        let _ = writeln!(out, "  rankdir=LR;");
    }
    if !opts.title.is_empty() {
        let _ = writeln!(out, "  label={:?};", opts.title);
        let _ = writeln!(out, "  labelloc=t;");
    }
    let _ = writeln!(out, "  node [fontsize=10];");
    for (i, t) in net.transitions().iter().enumerate() {
        let color = if highlight[i] { ", color=red, penwidth=2" } else { "" };
        let _ = writeln!(
            out,
            "  t{i} [shape=box, label=\"{}\\n{}\"{color}];",
            escape(&t.label),
            t.firing_time
        );
    }
    let mut critical_edges: Vec<(u32, u32)> = Vec::new();
    if opts.highlight.len() > 1 {
        for w in 0..opts.highlight.len() {
            critical_edges
                .push((opts.highlight[w].0, opts.highlight[(w + 1) % opts.highlight.len()].0));
        }
    }
    for (i, p) in net.places().iter().enumerate() {
        let crit = critical_edges.contains(&(p.pre.0, p.post.0));
        let ecolor = if crit { " color=red penwidth=2" } else { "" };
        if p.tokens > 0 {
            // A marked place renders as an intermediate dot node showing the
            // token count.
            let _ = writeln!(
                out,
                "  p{i} [shape=circle, width=0.18, fixedsize=true, label=\"{}\"];",
                p.tokens
            );
            let _ = writeln!(out, "  t{} -> p{i} [arrowhead=none{ecolor}];", p.pre.0);
            let _ = writeln!(out, "  p{i} -> t{} [{}];", p.post.0, ecolor.trim());
        } else {
            let _ = writeln!(out, "  t{} -> t{} [{}];", p.pre.0, p.post.0, ecolor.trim());
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> TimedEventGraph {
        let mut n = TimedEventGraph::new();
        let a = n.add_transition(3.0, "S0 on P0");
        let b = n.add_transition(5.0, "S1 on P1");
        n.add_place(a, b, 0, "flow");
        n.add_place(b, a, 1, "rr");
        n
    }

    #[test]
    fn renders_transitions_and_places() {
        let dot = to_dot(&net(), &DotOptions::default());
        assert!(dot.contains("digraph tpn"));
        assert!(dot.contains("S0 on P0"));
        assert!(dot.contains("t0 -> t1"), "zero-token place renders as a direct edge");
        assert!(dot.contains("shape=circle"), "marked place renders as a token node");
    }

    #[test]
    fn highlight_marks_critical() {
        let opts = DotOptions {
            highlight: vec![TransitionId(0), TransitionId(1)],
            title: "Example".into(),
            left_to_right: true,
        };
        let dot = to_dot(&net(), &opts);
        assert!(dot.contains("color=red"));
        assert!(dot.contains("rankdir=LR"));
        assert!(dot.contains("label=\"Example\""));
    }

    #[test]
    fn labels_are_escaped() {
        let mut n = TimedEventGraph::new();
        n.add_transition(1.0, "weird \"label\"");
        let dot = to_dot(&n, &DotOptions::default());
        assert!(dot.contains("weird \\\"label\\\""));
    }
}
