//! Timed Petri nets with the **event-graph property**.
//!
//! A timed event graph (TEG) is a Petri net in which every place has exactly
//! one input and one output transition — the class used by the paper to
//! model replicated-workflow mappings. This crate provides:
//!
//! * [`net`] — the net itself ([`net::TimedEventGraph`]): transitions with
//!   firing times, places with token markings, labels, sub-net extraction.
//! * [`analysis`] — steady-state period via maximum cycle ratio (Howard's
//!   iteration from the `maxplus` crate), with the critical circuit mapped
//!   back to transitions.
//! * [`sim`] — exact earliest-firing-schedule simulation via the standard
//!   TEG recurrence, with period estimation from the asymptotic regime; an
//!   independent check of the analytical period.
//! * [`dot`] — Graphviz export (used to regenerate the paper's Figures 3–5
//!   and 8–10).
//!
//! # Example
//!
//! ```
//! use tpn::net::TimedEventGraph;
//!
//! // A two-transition ping-pong: t0 feeds t1, t1 feeds back to t0.
//! let mut net = TimedEventGraph::new();
//! let t0 = net.add_transition(3.0, "t0");
//! let t1 = net.add_transition(5.0, "t1");
//! net.add_place(t0, t1, 1, "p01");
//! net.add_place(t1, t0, 1, "p10");
//! let period = tpn::analysis::period(&net).unwrap().unwrap();
//! assert!((period.period - 4.0).abs() < 1e-12); // (3+5)/2 tokens
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bounds;
pub mod io;
pub mod marking;
pub mod dot;
pub mod net;
pub mod sim;

pub use analysis::{period, PeriodSolution};
pub use net::{PlaceId, TimedEventGraph, TransitionId};
