//! The timed event graph data structure.

use std::fmt;

/// Identifier of a transition within its [`TimedEventGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(pub u32);

/// Identifier of a place within its [`TimedEventGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(pub u32);

/// A transition: the use of a physical resource for `firing_time` time units
/// (a computation of a stage on a processor, or the transfer of a file over
/// a link).
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Firing duration (holding time), ≥ 0 and finite.
    pub firing_time: f64,
    /// Human-readable label, e.g. `"S1 on P2 (row 3)"`.
    pub label: String,
}

/// A place: a dependence between two transitions. Event-graph property:
/// exactly one input (`pre`) and one output (`post`) transition — enforced
/// structurally, a place stores exactly one of each.
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    /// The transition producing tokens into this place.
    pub pre: TransitionId,
    /// The transition consuming tokens from this place.
    pub post: TransitionId,
    /// Initial marking.
    pub tokens: u32,
    /// Human-readable label.
    pub label: String,
}

/// A timed Petri net with the event-graph property.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimedEventGraph {
    transitions: Vec<Transition>,
    places: Vec<Place>,
}

impl TimedEventGraph {
    /// Creates an empty net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty net with reserved capacity.
    pub fn with_capacity(transitions: usize, places: usize) -> Self {
        TimedEventGraph {
            transitions: Vec::with_capacity(transitions),
            places: Vec::with_capacity(places),
        }
    }

    /// Removes all transitions and places, **keeping both buffers'
    /// capacity** — the arena primitive behind
    /// `repwf_core::tpn_build::build_tpn_into`, which rebuilds a mapping's
    /// TPN into the same net thousands of times without re-allocating.
    pub fn clear(&mut self) {
        self.transitions.clear();
        self.places.clear();
    }

    /// Adds a transition with the given firing time. Panics if the time is
    /// negative or not finite.
    pub fn add_transition(&mut self, firing_time: f64, label: impl Into<String>) -> TransitionId {
        assert!(
            firing_time.is_finite() && firing_time >= 0.0,
            "firing time must be finite and non-negative, got {firing_time}"
        );
        let id = TransitionId(self.transitions.len() as u32);
        self.transitions.push(Transition { firing_time, label: label.into() });
        id
    }

    /// Overwrites the firing time of transition `t` in place, returning the
    /// previous value. Panics like [`TimedEventGraph::add_transition`] on a
    /// negative or non-finite time.
    ///
    /// This is the delta-update primitive behind incremental period
    /// analysis: a shape-preserving mapping change (e.g. swapping the
    /// processors of two replica slots) re-times transitions of an
    /// otherwise identical net, so callers patch firing times instead of
    /// clearing and rebuilding the whole net. Note that the transition's
    /// label is left untouched — patch only nets built without labels (or
    /// accept stale ones).
    pub fn patch(&mut self, t: TransitionId, firing_time: f64) -> f64 {
        assert!(
            firing_time.is_finite() && firing_time >= 0.0,
            "firing time must be finite and non-negative, got {firing_time}"
        );
        let slot = &mut self.transitions[t.0 as usize].firing_time;
        std::mem::replace(slot, firing_time)
    }

    /// Adds a place from `pre` to `post` with `tokens` initial tokens.
    pub fn add_place(
        &mut self,
        pre: TransitionId,
        post: TransitionId,
        tokens: u32,
        label: impl Into<String>,
    ) -> PlaceId {
        assert!((pre.0 as usize) < self.transitions.len(), "pre transition out of range");
        assert!((post.0 as usize) < self.transitions.len(), "post transition out of range");
        let id = PlaceId(self.places.len() as u32);
        self.places.push(Place { pre, post, tokens, label: label.into() });
        id
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// All places.
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// A transition by id.
    pub fn transition(&self, id: TransitionId) -> &Transition {
        &self.transitions[id.0 as usize]
    }

    /// A place by id.
    pub fn place(&self, id: PlaceId) -> &Place {
        &self.places[id.0 as usize]
    }

    /// Total initial marking.
    pub fn total_tokens(&self) -> u64 {
        self.places.iter().map(|p| u64::from(p.tokens)).sum()
    }

    /// Input places of each transition: `inputs[t]` lists place indices with
    /// `post == t`.
    pub fn input_places(&self) -> Vec<Vec<u32>> {
        let mut inputs = vec![Vec::new(); self.transitions.len()];
        for (i, p) in self.places.iter().enumerate() {
            inputs[p.post.0 as usize].push(i as u32);
        }
        inputs
    }

    /// Extracts the sub-net induced by a transition subset, dropping places
    /// with an endpoint outside the subset. Returns the sub-net and the map
    /// `old transition id → new transition id`.
    ///
    /// This is how the paper's Figures 9 and 10 (per-communication sub-TPNs)
    /// are produced: restrict the full net to one column of transitions.
    pub fn restrict(&self, keep: &[TransitionId]) -> (TimedEventGraph, Vec<Option<TransitionId>>) {
        let mut map: Vec<Option<TransitionId>> = vec![None; self.transitions.len()];
        let mut sub = TimedEventGraph::with_capacity(keep.len(), self.places.len());
        for &old in keep {
            let t = self.transition(old);
            let new = sub.add_transition(t.firing_time, t.label.clone());
            map[old.0 as usize] = Some(new);
        }
        for p in &self.places {
            if let (Some(pre), Some(post)) = (map[p.pre.0 as usize], map[p.post.0 as usize]) {
                sub.add_place(pre, post, p.tokens, p.label.clone());
            }
        }
        (sub, map)
    }

    /// Structural sanity checks: every referenced transition exists (by
    /// construction) and the net is non-trivially connected. Returns a list
    /// of diagnostics (empty = OK).
    pub fn lint(&self) -> Vec<String> {
        let mut out = Vec::new();
        let inputs = self.input_places();
        for (t, ins) in inputs.iter().enumerate() {
            if ins.is_empty() {
                out.push(format!(
                    "transition {} ({:?}) has no input place: it can fire infinitely fast",
                    t, self.transitions[t].label
                ));
            }
        }
        out
    }
}

impl fmt::Display for TimedEventGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TimedEventGraph: {} transitions, {} places, {} tokens",
            self.num_transitions(),
            self.num_places(),
            self.total_tokens()
        )?;
        for (i, t) in self.transitions.iter().enumerate() {
            writeln!(f, "  T{i}: {} (time {})", t.label, t.firing_time)?;
        }
        for p in &self.places {
            writeln!(
                f,
                "  P: T{} -> T{} tokens={} ({})",
                p.pre.0, p.post.0, p.tokens, p.label
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping_pong() -> TimedEventGraph {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(2.0, "b");
        net.add_place(a, b, 0, "ab");
        net.add_place(b, a, 1, "ba");
        net
    }

    #[test]
    fn counts() {
        let net = ping_pong();
        assert_eq!(net.num_transitions(), 2);
        assert_eq!(net.num_places(), 2);
        assert_eq!(net.total_tokens(), 1);
    }

    #[test]
    fn input_places_indexed_by_post() {
        let net = ping_pong();
        let inputs = net.input_places();
        assert_eq!(inputs[0], vec![1]); // "ba" feeds a
        assert_eq!(inputs[1], vec![0]);
    }

    #[test]
    fn restrict_drops_cross_places() {
        let mut net = ping_pong();
        let c = net.add_transition(3.0, "c");
        net.add_place(TransitionId(0), c, 0, "ac");
        let (sub, map) = net.restrict(&[TransitionId(0), TransitionId(1)]);
        assert_eq!(sub.num_transitions(), 2);
        assert_eq!(sub.num_places(), 2); // "ac" dropped
        assert_eq!(map[2], None);
    }

    #[test]
    fn lint_flags_sources() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, b, 0, "ab");
        let lint = net.lint();
        assert_eq!(lint.len(), 1);
        assert!(lint[0].contains("no input place"));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let mut net = TimedEventGraph::new();
        net.add_transition(-1.0, "bad");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_place_rejected() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        net.add_place(a, TransitionId(7), 0, "bad");
    }
}
