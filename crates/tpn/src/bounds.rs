//! Structural place bounds of an event graph.
//!
//! In an event graph every circuit's token count is invariant, so the
//! maximum number of tokens a place `p = (a → b)` can ever hold equals the
//! *minimum* total marking over circuits through `p`:
//!
//! ```text
//! bound(p) = M₀(p) + min-token path weight from b back to a
//! ```
//!
//! (`∞` if `b` cannot reach `a`: the place is structurally unbounded — in
//! the workflow TPNs this is exactly the row-order places, whose buffers
//! the paper's unbounded-buffer model lets grow; the round-robin circuit
//! places are all 1-bounded.) Computed with one Dijkstra per place over
//! token weights.

use crate::net::TimedEventGraph;
use std::collections::BinaryHeap;

/// The bound of every place: `None` = structurally unbounded.
pub fn place_bounds(net: &TimedEventGraph) -> Vec<Option<u64>> {
    let n = net.num_transitions();
    // adjacency by place: edge pre → post with weight tokens
    let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    for p in net.places() {
        adj[p.pre.0 as usize].push((p.post.0, u64::from(p.tokens)));
    }
    // group places by (post, pre) need: run Dijkstra from each distinct
    // source `post`; reuse distances for all places sharing it.
    let mut dist_cache: std::collections::BTreeMap<u32, Vec<u64>> = std::collections::BTreeMap::new();
    let mut out = Vec::with_capacity(net.num_places());
    for p in net.places() {
        let src = p.post.0;
        let dist = dist_cache.entry(src).or_insert_with(|| dijkstra(&adj, src, n));
        let d = dist[p.pre.0 as usize];
        out.push(if d == u64::MAX { None } else { Some(u64::from(p.tokens) + d) });
    }
    out
}

/// Min-token distance from `src` to every transition.
fn dijkstra(adj: &[Vec<(u32, u64)>], src: u32, n: usize) -> Vec<u64> {
    let mut dist = vec![u64::MAX; n];
    dist[src as usize] = 0;
    // max-heap on Reverse(distance)
    let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = BinaryHeap::new();
    heap.push(std::cmp::Reverse((0, src)));
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &(w, c) in &adj[v as usize] {
            let nd = d + c;
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                heap.push(std::cmp::Reverse((nd, w)));
            }
        }
    }
    dist
}

/// Summary of the boundedness structure of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsSummary {
    /// Places with a finite bound, with the maximum such bound.
    pub bounded: usize,
    /// The largest finite bound (0 when no place is bounded).
    pub max_bound: u64,
    /// Structurally unbounded places.
    pub unbounded: usize,
}

/// Computes the summary.
pub fn summary(net: &TimedEventGraph) -> BoundsSummary {
    let bounds = place_bounds(net);
    let mut s = BoundsSummary { bounded: 0, max_bound: 0, unbounded: 0 };
    for b in bounds {
        match b {
            Some(v) => {
                s.bounded += 1;
                s.max_bound = s.max_bound.max(v);
            }
            None => s.unbounded += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::TokenGame;
    use crate::net::{PlaceId, TimedEventGraph};

    #[test]
    fn ring_places_bounded_by_total() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, b, 2, "ab");
        net.add_place(b, a, 1, "ba");
        let bounds = place_bounds(&net);
        assert_eq!(bounds, vec![Some(3), Some(3)]);
    }

    #[test]
    fn forward_place_unbounded() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, a, 1, "self-a");
        net.add_place(b, b, 1, "self-b");
        net.add_place(a, b, 0, "forward");
        let bounds = place_bounds(&net);
        assert_eq!(bounds[0], Some(1));
        assert_eq!(bounds[1], Some(1));
        assert_eq!(bounds[2], None, "no return path: buffer can grow forever");
    }

    #[test]
    fn tighter_circuit_wins() {
        // Place ab sits on two circuits: a→b→a (1 token) and a→b→c→a (3).
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        let c = net.add_transition(1.0, "c");
        net.add_place(a, b, 0, "ab");
        net.add_place(b, a, 1, "ba");
        net.add_place(b, c, 1, "bc");
        net.add_place(c, a, 2, "ca");
        let bounds = place_bounds(&net);
        assert_eq!(bounds[0], Some(1), "min circuit through ab has 1 token");
    }

    #[test]
    fn bound_never_violated_by_token_game() {
        // Random-ish play on a two-circuit net: markings stay within bounds.
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        let c = net.add_transition(1.0, "c");
        net.add_place(a, b, 1, "ab");
        net.add_place(b, a, 1, "ba");
        net.add_place(b, c, 2, "bc");
        net.add_place(c, b, 0, "cb");
        let bounds = place_bounds(&net);
        let mut game = TokenGame::new(&net);
        let mut state = 11usize;
        for _ in 0..300 {
            let enabled = game.enabled_transitions();
            assert!(!enabled.is_empty());
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            game.fire(enabled[state % enabled.len()]);
            for (i, bound) in bounds.iter().enumerate() {
                if let Some(bv) = bound {
                    assert!(
                        game.marking().tokens(crate::net::PlaceId(i as u32)) <= *bv,
                        "place {i} exceeded bound {bv}"
                    );
                }
            }
        }
    }

    #[test]
    fn summary_counts() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, a, 2, "sa");
        net.add_place(a, b, 0, "fwd");
        let s = summary(&net);
        assert_eq!(s, BoundsSummary { bounded: 1, max_bound: 2, unbounded: 1 });
    }

    #[test]
    fn workflow_circuit_places_are_one_bounded() {
        // All round-robin circuit places of a mapping TPN are 1-bounded;
        // the row-order (dataflow) places are unbounded. Small hand net
        // mimicking one column with two replicas:
        let mut net = TimedEventGraph::new();
        let r0 = net.add_transition(2.0, "row0");
        let r1 = net.add_transition(2.0, "row1");
        let next0 = net.add_transition(1.0, "next0");
        net.add_place(r0, r1, 0, "rr chain");
        net.add_place(r1, r0, 1, "rr wrap");
        net.add_place(r0, next0, 0, "dataflow");
        net.add_place(next0, next0, 1, "self");
        let bounds = place_bounds(&net);
        assert_eq!(bounds[0], Some(1));
        assert_eq!(bounds[1], Some(1));
        assert_eq!(bounds[2], None);
    }

    #[test]
    fn place_id_type_alias_consistency() {
        // place_bounds output indexes line up with PlaceId order.
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let p0 = net.add_place(a, a, 4, "self");
        assert_eq!(p0, PlaceId(0));
        assert_eq!(place_bounds(&net)[0], Some(4));
    }
}
