//! A small line-oriented text format for timed event graphs.
//!
//! Lets nets be saved, diffed and shipped between tools (and gives the
//! figure binaries something stable to emit besides DOT):
//!
//! ```text
//! # comment
//! tpn v1
//! t <firing_time> <label…>          # one per transition, in id order
//! p <pre> <post> <tokens> <label…>  # one per place
//! ```
//!
//! Labels are the remainder of the line (may contain spaces); writing and
//! re-reading a net reproduces it exactly (round-trip property-tested).

use crate::net::{TimedEventGraph, TransitionId};
use std::fmt::Write as _;

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Missing or wrong header line.
    BadHeader,
    /// A malformed line, with its 1-based number.
    BadLine(usize),
    /// A place referenced an unknown transition id, line number attached.
    UnknownTransition(usize),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "expected header line `tpn v1`"),
            ParseError::BadLine(n) => write!(f, "malformed line {n}"),
            ParseError::UnknownTransition(n) => write!(f, "unknown transition id on line {n}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a net to the text format.
pub fn to_text(net: &TimedEventGraph) -> String {
    let mut out = String::from("tpn v1\n");
    for t in net.transitions() {
        let _ = writeln!(out, "t {} {}", t.firing_time, t.label);
    }
    for p in net.places() {
        let _ = writeln!(out, "p {} {} {} {}", p.pre.0, p.post.0, p.tokens, p.label);
    }
    out
}

/// Parses a net from the text format.
pub fn from_text(text: &str) -> Result<TimedEventGraph, ParseError> {
    let mut lines = text.lines().enumerate();
    // Header (skipping leading comments/blanks).
    loop {
        match lines.next() {
            Some((_, l)) if l.trim().is_empty() || l.trim_start().starts_with('#') => continue,
            Some((_, l)) if l.trim() == "tpn v1" => break,
            _ => return Err(ParseError::BadHeader),
        }
    }
    let mut net = TimedEventGraph::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.splitn(2, ' ');
        let kind = it.next().ok_or(ParseError::BadLine(lineno))?;
        let rest = it.next().unwrap_or("");
        match kind {
            "t" => {
                let mut it = rest.splitn(2, ' ');
                let time: f64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError::BadLine(lineno))?;
                if !time.is_finite() || time < 0.0 {
                    return Err(ParseError::BadLine(lineno));
                }
                let label = it.next().unwrap_or("");
                net.add_transition(time, label);
            }
            "p" => {
                let mut it = rest.splitn(4, ' ');
                let pre: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError::BadLine(lineno))?;
                let post: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError::BadLine(lineno))?;
                let tokens: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or(ParseError::BadLine(lineno))?;
                let label = it.next().unwrap_or("");
                let n = net.num_transitions() as u32;
                if pre >= n || post >= n {
                    return Err(ParseError::UnknownTransition(lineno));
                }
                net.add_place(TransitionId(pre), TransitionId(post), tokens, label);
            }
            _ => return Err(ParseError::BadLine(lineno)),
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_net() -> TimedEventGraph {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(3.5, "S0 on P0");
        let b = net.add_transition(2.0, "F0: P0 > P1");
        net.add_place(a, b, 0, "flow to b");
        net.add_place(b, a, 2, "round robin");
        net
    }

    #[test]
    fn round_trip_sample() {
        let net = sample_net();
        let text = to_text(&net);
        let back = from_text(&text).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hello\n\ntpn v1\nt 1 a\n# mid comment\nt 2 b\np 0 1 1 link\n";
        let net = from_text(text).unwrap();
        assert_eq!(net.num_transitions(), 2);
        assert_eq!(net.num_places(), 1);
        assert_eq!(net.places()[0].label, "link");
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(from_text("tpn v2\n"), Err(ParseError::BadHeader));
        assert_eq!(from_text(""), Err(ParseError::BadHeader));
    }

    #[test]
    fn bad_place_reference_rejected() {
        let text = "tpn v1\nt 1 a\np 0 5 1 dangling\n";
        assert_eq!(from_text(text), Err(ParseError::UnknownTransition(3)));
    }

    #[test]
    fn negative_time_rejected() {
        let text = "tpn v1\nt -3 a\n";
        assert_eq!(from_text(text), Err(ParseError::BadLine(2)));
    }

    proptest! {
        #[test]
        fn round_trip_random(
            times in proptest::collection::vec(0.0f64..1e6, 1..12),
            places in proptest::collection::vec((0u32..12, 0u32..12, 0u32..4), 0..24),
            labels in proptest::collection::vec("[ -~]{0,12}", 1..12),
        ) {
            let mut net = TimedEventGraph::new();
            for (i, &t) in times.iter().enumerate() {
                let label = labels.get(i).cloned().unwrap_or_default();
                // the format trims labels; normalize to trimmed ones
                net.add_transition(t, label.trim());
            }
            let n = net.num_transitions() as u32;
            for &(a, b, tok) in &places {
                net.add_place(TransitionId(a % n), TransitionId(b % n), tok, "pl");
            }
            let back = from_text(&to_text(&net)).unwrap();
            prop_assert_eq!(net, back);
        }
    }
}
