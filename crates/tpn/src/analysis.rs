//! Steady-state analysis of timed event graphs.
//!
//! After a transient, every transition of a live TEG fires exactly once per
//! period `P`, and `P` equals the maximum over circuits of
//! `Σ firing times / Σ tokens` (Baccelli, Cohen, Olsder, Quadrat,
//! *Synchronization and Linearity*, 1992 — reference \[2\] of the paper).
//! This module bridges the net to the `maxplus` cycle-ratio algorithms and
//! maps the critical circuit back to transitions.

use crate::net::{TimedEventGraph, TransitionId};
use maxplus::graph::RatioGraph;
use maxplus::graph::RatioGraphError;
use maxplus::howard::max_cycle_ratio;
use maxplus::lawler::max_cycle_ratio_lawler;

/// The steady-state period of a net, with its critical circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct PeriodSolution {
    /// The period: maximum cycle ratio of the net. One firing of every
    /// transition per `period` time units in steady state.
    pub period: f64,
    /// Transitions of a critical circuit, in circuit order.
    pub critical: Vec<TransitionId>,
    /// Total firing time along the critical circuit.
    pub cost: f64,
    /// Total tokens along the critical circuit.
    pub tokens: u64,
}

/// Errors from period analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The net deadlocks: some circuit carries no token.
    Deadlock {
        /// Transitions of a deadlocked circuit.
        circuit: Vec<TransitionId>,
    },
    /// Numerical failure in the underlying solver.
    Numeric(String),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Deadlock { circuit } => {
                write!(f, "deadlocked (token-free) circuit through {} transitions", circuit.len())
            }
            AnalysisError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Builds the cycle-ratio view of a net: one vertex per transition, one edge
/// per place (`pre → post`) carrying the *pre* transition's firing time as
/// cost and the place's marking as tokens.
///
/// Along any circuit each transition contributes its firing time exactly
/// once (as the `pre` of the next place), so circuit cost = Σ firing times.
pub fn ratio_graph(net: &TimedEventGraph) -> RatioGraph {
    let mut g = RatioGraph::with_capacity(net.num_transitions(), net.num_places());
    ratio_graph_into(net, &mut g);
    g
}

/// [`ratio_graph`] into a caller-owned graph: resets `g` and rebuilds it
/// in place, reusing its edge buffer (no allocation once the buffer has
/// grown to the largest net seen).
pub fn ratio_graph_into(net: &TimedEventGraph, g: &mut RatioGraph) {
    g.reset(net.num_transitions());
    for p in net.places() {
        g.add_edge(p.pre.0, p.post.0, net.transition(p.pre).firing_time, p.tokens);
    }
}

/// Reusable scratch for repeated period computations: the cycle-ratio view
/// of the net plus the `maxplus` solver workspace. Hold one per solver
/// thread and feed it to [`period_with`]; every buffer — the ratio graph,
/// the CSR adjacency, Tarjan's stacks, Howard's policy arrays — is reused
/// across calls, and the converged policy enables warm-started iteration.
#[derive(Debug, Clone, Default)]
pub struct PeriodScratch {
    graph: RatioGraph,
    ws: maxplus::Workspace,
    // Place indices grouped by *pre* transition (CSR layout): the edges of
    // `graph` whose cost must change when that transition is re-timed.
    // Built lazily on the first patched solve after a rebuild (the place
    // structure is intact in the net, so it can always be derived there).
    pre_offsets: Vec<u32>,
    pre_places: Vec<u32>,
    pre_valid: bool,
    // Structure generation of `graph`: bumped on every rebuild
    // ([`period_with`]) and handed to the workspace as its structure
    // token, so patched solves ([`period_patched_with`]) — which only
    // re-weight edges — reuse the cached CSR adjacency and Tarjan
    // condensation of the rebuild solve (zero CSR builds, zero Tarjan
    // runs on the patch path).
    structure_gen: u64,
}

impl PeriodScratch {
    /// Creates an empty scratch (no allocation until the first solve).
    pub fn new() -> Self {
        PeriodScratch::default()
    }

    /// Forgets the warm-start policy of the previous solve.
    pub fn clear_warm_start(&mut self) {
        self.ws.clear_warm_start();
    }

    /// Number of CSR adjacency builds the underlying solver workspace has
    /// performed. A patched solve on an unchanged structure performs none
    /// — tests and the tracked benches assert it through this counter.
    pub fn csr_builds(&self) -> u64 {
        self.ws.csr_builds()
    }

    /// Number of Tarjan condensation runs the underlying solver workspace
    /// has performed (see [`PeriodScratch::csr_builds`]).
    pub fn tarjan_runs(&self) -> u64 {
        self.ws.tarjan_runs()
    }

    fn build_pre_index(&mut self, net: &TimedEventGraph) {
        let n = net.num_transitions();
        self.pre_offsets.clear();
        self.pre_offsets.resize(n + 1, 0);
        for p in net.places() {
            self.pre_offsets[p.pre.0 as usize + 1] += 1;
        }
        for i in 0..n {
            self.pre_offsets[i + 1] += self.pre_offsets[i];
        }
        let mut cursor: Vec<u32> = self.pre_offsets[..n].to_vec();
        self.pre_places.clear();
        self.pre_places.resize(net.num_places(), 0);
        for (i, p) in net.places().iter().enumerate() {
            let c = &mut cursor[p.pre.0 as usize];
            self.pre_places[*c as usize] = i as u32;
            *c += 1;
        }
        self.pre_valid = true;
    }
}

/// Computes the period of the net reusing `scratch` across calls.
///
/// With `warm` set, Howard's policy iteration starts from the converged
/// policy of the previous solve whenever the graph shape matches — the
/// intended mode for evaluating families of related nets (neighbor
/// mappings in a search). The result is identical either way on generic
/// inputs: the ratio is recomputed exactly from the witness circuit; only
/// the search path differs. When distinct circuits tie for critical within
/// the solver's eps (~1e-12 relative), the reported witness — and its last
/// bits — may differ.
pub fn period_with(
    net: &TimedEventGraph,
    scratch: &mut PeriodScratch,
    warm: bool,
) -> Result<Option<PeriodSolution>, AnalysisError> {
    ratio_graph_into(net, &mut scratch.graph);
    // The place structure may have changed: the patch index of any previous
    // net no longer applies, and the solver must not reuse a condensation
    // computed for the old structure.
    scratch.pre_valid = false;
    scratch.structure_gen = scratch.structure_gen.wrapping_add(1);
    solve(scratch, warm)
}

/// Incremental variant of [`period_with`]: instead of rebuilding the
/// cycle-ratio view, re-weights the edges fed by the `changed` transitions
/// with their current firing times and re-solves.
///
/// **Caller contract:** the last rebuild solve on this `scratch`
/// ([`period_with`]) must have been for a net with the *identical place
/// structure* (same `pre`/`post`/`tokens` per place, in order) — only
/// firing times may differ, and every transition whose time differs from
/// that last solve must be listed in `changed` (duplicates and unchanged
/// entries are harmless). Under that contract the patched graph is
/// bit-for-bit the graph a full rebuild would produce, so the result — and,
/// with `warm`, the whole solver trajectory — is identical to the
/// rebuild path. The contract is upheld by
/// `repwf_core::engine::PeriodEngine`, which only patches when the mapping
/// change provably preserves the TPN shape.
pub fn period_patched_with(
    net: &TimedEventGraph,
    scratch: &mut PeriodScratch,
    warm: bool,
    changed: &[TransitionId],
) -> Result<Option<PeriodSolution>, AnalysisError> {
    assert_eq!(
        scratch.graph.num_vertices(),
        net.num_transitions(),
        "patched solve requires a scratch graph built from this net"
    );
    assert_eq!(
        scratch.graph.num_edges(),
        net.num_places(),
        "patched solve requires a scratch graph built from this net"
    );
    if !scratch.pre_valid {
        scratch.build_pre_index(net);
    }
    for &t in changed {
        let time = net.transition(t).firing_time;
        let (a, b) = (
            scratch.pre_offsets[t.0 as usize] as usize,
            scratch.pre_offsets[t.0 as usize + 1] as usize,
        );
        for &place in &scratch.pre_places[a..b] {
            scratch.graph.set_edge_cost(place as usize, time);
        }
    }
    solve(scratch, warm)
}

/// Nets with at least this many transitions route cold solves through the
/// per-SCC parallel solver ([`maxplus::Workspace::max_cycle_ratio_par`]):
/// independent condensation components solve on the `repwf-par` pool and
/// merge in condensation order, so the result is bit-identical to the
/// sequential path at any thread count. Below the threshold (or with a
/// warm start requested) the thread fan-out costs more than the solve.
pub const PAR_SOLVE_MIN_VERTICES: usize = 200_000;

fn solve(scratch: &mut PeriodScratch, warm: bool) -> Result<Option<PeriodSolution>, AnalysisError> {
    if !warm && scratch.graph.num_vertices() >= PAR_SOLVE_MIN_VERTICES {
        return convert(
            scratch.ws.max_cycle_ratio_par(&scratch.graph, repwf_par::max_threads()),
        );
    }
    // Always present the structure generation as the workspace's token:
    // the rebuild solve records it, and every patched solve until the next
    // rebuild hits the cached CSR + condensation (the workspace drops the
    // cache itself on a solve error).
    convert(scratch.ws.max_cycle_ratio_cached(&scratch.graph, scratch.structure_gen, warm))
}

/// Shape-batched period analysis: stages the firing-time planes of `k`
/// nets sharing one place structure and solves them in a single batched
/// Howard pass ([`maxplus::Workspace::max_cycle_ratio_batch`]).
///
/// The caller names each structure with a `key`; consecutive batches under
/// the same key (and dimensions) reuse the staged ratio-graph structure
/// *and* the solver's cached CSR + Tarjan condensation — one structural
/// phase per shape, however many instances flow through. Results are
/// bit-for-bit those of a cold [`period_with`] per instance.
#[derive(Debug, Clone, Default)]
pub struct PeriodBatch {
    graph: RatioGraph,
    ws: maxplus::Workspace,
    planes: maxplus::batch::CostPlanes,
    scratch: maxplus::batch::BatchScratch,
    /// Per place (edge insertion order): the *pre* transition whose firing
    /// time is that edge's cost.
    pre: Vec<u32>,
    have: Option<(u64, usize, usize)>,
    key: u64,
    k: usize,
}

impl PeriodBatch {
    /// Creates an empty batch scratch (no allocation until first use).
    pub fn new() -> Self {
        PeriodBatch::default()
    }

    /// Stages the shared structure of the next batch: `net` supplies the
    /// place structure (its firing times are irrelevant — per-instance
    /// times arrive via [`PeriodBatch::stage`]), `k` the number of
    /// instances, and `key` the caller's canonical shape token. A repeated
    /// `(key, dims)` skips the ratio-graph rebuild here and the CSR +
    /// condensation work inside the solve.
    pub fn set_structure(&mut self, net: &TimedEventGraph, k: usize, key: u64) {
        let dims = (key, net.num_transitions(), net.num_places());
        if self.have != Some(dims) {
            ratio_graph_into(net, &mut self.graph);
            self.pre.clear();
            self.pre.extend(net.places().iter().map(|p| p.pre.0));
            self.have = Some(dims);
            self.key = key;
        }
        self.k = k;
        self.planes.reset(k, self.graph.num_edges());
    }

    /// Stages instance `q`'s firing times (`times[t]` = firing time of
    /// transition `t`, as produced by one TPN build of this structure).
    pub fn stage(&mut self, q: usize, times: &[f64]) {
        let plane = self.planes.plane_mut(q);
        for (c, &t) in plane.iter_mut().zip(&self.pre) {
            *c = times[t as usize];
        }
    }

    /// Solves every staged instance in one batched pass. Results are in
    /// stage order, each bit-for-bit equal to a cold [`period_with`] on
    /// the net with that instance's firing times.
    pub fn solve(&mut self) -> Vec<Result<Option<PeriodSolution>, AnalysisError>> {
        self.ws
            .max_cycle_ratio_batch(&self.graph, self.key, &self.planes, &mut self.scratch)
            .into_iter()
            .map(convert)
            .collect()
    }

    /// CSR adjacency builds performed by the underlying workspace — one
    /// per distinct structure, however many batches flow through.
    pub fn csr_builds(&self) -> u64 {
        self.ws.csr_builds()
    }

    /// Tarjan condensation runs performed by the underlying workspace
    /// (see [`PeriodBatch::csr_builds`]).
    pub fn tarjan_runs(&self) -> u64 {
        self.ws.tarjan_runs()
    }
}

fn convert(res: Result<Option<maxplus::CycleSolution>, RatioGraphError>) -> Result<Option<PeriodSolution>, AnalysisError> {
    match res {
        Ok(None) => Ok(None),
        Ok(Some(sol)) => Ok(Some(PeriodSolution {
            period: sol.ratio,
            critical: sol.cycle.into_iter().map(TransitionId).collect(),
            cost: sol.cost,
            tokens: sol.tokens,
        })),
        Err(RatioGraphError::ZeroTokenCycle { cycle }) => Err(AnalysisError::Deadlock {
            circuit: cycle.into_iter().map(TransitionId).collect(),
        }),
        Err(e) => Err(AnalysisError::Numeric(e.to_string())),
    }
}

/// Computes the period of the net (Howard's iteration). `Ok(None)` when the
/// net has no circuit at all (pure pipeline: unbounded throughput).
pub fn period(net: &TimedEventGraph) -> Result<Option<PeriodSolution>, AnalysisError> {
    convert(max_cycle_ratio(&ratio_graph(net)))
}

/// Same as [`period`] but via Lawler's parametric search — an independent
/// cross-check of the Howard result.
pub fn period_lawler(net: &TimedEventGraph) -> Result<Option<PeriodSolution>, AnalysisError> {
    convert(max_cycle_ratio_lawler(&ratio_graph(net)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_period() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(3.0, "a");
        let b = net.add_transition(5.0, "b");
        net.add_place(a, b, 1, "ab");
        net.add_place(b, a, 1, "ba");
        let sol = period(&net).unwrap().unwrap();
        assert!((sol.period - 4.0).abs() < 1e-12);
        assert_eq!(sol.tokens, 2);
        assert_eq!(sol.critical.len(), 2);
    }

    #[test]
    fn self_loop_resource() {
        // A single resource with a recycling token: period = firing time.
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(7.0, "a");
        net.add_place(a, a, 1, "self");
        let sol = period(&net).unwrap().unwrap();
        assert!((sol.period - 7.0).abs() < 1e-12);
    }

    #[test]
    fn acyclic_unbounded() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, b, 0, "ab");
        assert_eq!(period(&net).unwrap(), None);
    }

    #[test]
    fn deadlock_reported() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, b, 0, "ab");
        net.add_place(b, a, 0, "ba");
        match period(&net) {
            Err(AnalysisError::Deadlock { circuit }) => assert_eq!(circuit.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn howard_and_lawler_agree() {
        // 3-transition chain with a slow feedback loop.
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(2.0, "a");
        let b = net.add_transition(4.0, "b");
        let c = net.add_transition(6.0, "c");
        net.add_place(a, b, 0, "ab");
        net.add_place(b, c, 0, "bc");
        net.add_place(c, a, 2, "ca");
        net.add_place(b, b, 1, "bb");
        let h = period(&net).unwrap().unwrap();
        let l = period_lawler(&net).unwrap().unwrap();
        assert!((h.period - l.period).abs() < 1e-9);
        assert!((h.period - 6.0).abs() < 1e-12); // cycle abc: 12/2 = 6 > bb: 4
    }

    #[test]
    fn period_with_scratch_matches_one_shot() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(2.0, "a");
        let b = net.add_transition(4.0, "b");
        let c = net.add_transition(6.0, "c");
        net.add_place(a, b, 0, "ab");
        net.add_place(b, c, 0, "bc");
        net.add_place(c, a, 2, "ca");
        net.add_place(b, b, 1, "bb");
        let reference = period(&net).unwrap().unwrap();
        let mut scratch = PeriodScratch::new();
        for warm in [false, true, true] {
            let sol = period_with(&net, &mut scratch, warm).unwrap().unwrap();
            assert_eq!(sol.period.to_bits(), reference.period.to_bits());
            assert_eq!(sol.critical, reference.critical);
        }
    }

    #[test]
    fn scratch_survives_net_rebuilds() {
        // The arena flow of the period engine: clear + rebuild the same net
        // buffer with different timings, solving warm each time.
        let mut net = TimedEventGraph::new();
        let mut scratch = PeriodScratch::new();
        for k in 1..=5u32 {
            net.clear();
            let a = net.add_transition(f64::from(k), "a");
            let b = net.add_transition(2.0 * f64::from(k), "b");
            net.add_place(a, b, 1, "ab");
            net.add_place(b, a, 1, "ba");
            let sol = period_with(&net, &mut scratch, true).unwrap().unwrap();
            assert!((sol.period - 1.5 * f64::from(k)).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn patched_solve_matches_rebuild_bitwise() {
        // Same structure, re-timed transitions: the patched path must equal
        // a full rebuild bit for bit, warm or cold.
        let build = |net: &mut TimedEventGraph, ta: f64, tb: f64| {
            net.clear();
            let a = net.add_transition(ta, "a");
            let b = net.add_transition(tb, "b");
            let c = net.add_transition(6.0, "c");
            net.add_place(a, b, 0, "ab");
            net.add_place(b, c, 0, "bc");
            net.add_place(c, a, 2, "ca");
            net.add_place(b, b, 1, "bb");
        };
        let mut net = TimedEventGraph::new();
        let mut patched = PeriodScratch::new();
        let mut rebuilt = PeriodScratch::new();
        build(&mut net, 2.0, 4.0);
        for warm in [false, true] {
            let a = period_with(&net, &mut patched, warm).unwrap().unwrap();
            let b = period_with(&net, &mut rebuilt, warm).unwrap().unwrap();
            assert_eq!(a.period.to_bits(), b.period.to_bits());
            for k in 1..=4u32 {
                let (ta, tb) = (2.0 + f64::from(k), 4.0 + 0.5 * f64::from(k));
                net.patch(TransitionId(0), ta);
                net.patch(TransitionId(1), tb);
                let p = period_patched_with(
                    &net,
                    &mut patched,
                    warm,
                    &[TransitionId(0), TransitionId(1)],
                )
                .unwrap()
                .unwrap();
                let r = period_with(&net, &mut rebuilt, warm).unwrap().unwrap();
                assert_eq!(p.period.to_bits(), r.period.to_bits(), "warm={warm} k={k}");
                assert_eq!(p.critical, r.critical);
                assert_eq!(p.tokens, r.tokens);
            }
        }
        // The patched scratch solved 10 times but only its 2 rebuild
        // solves touched the structure; the rebuilding scratch condensed
        // on every one of its 10 solves.
        assert_eq!((patched.csr_builds(), patched.tarjan_runs()), (2, 2));
        assert_eq!((rebuilt.csr_builds(), rebuilt.tarjan_runs()), (10, 10));
    }

    #[test]
    fn errored_solve_is_not_reused_by_the_next_patched_solve() {
        // A deadlocked net errors through both entry points; the failed
        // solve must leave no cached condensation behind, so the patched
        // retry condenses again instead of reusing stale state.
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, b, 0, "ab");
        net.add_place(b, a, 0, "ba");
        let mut scratch = PeriodScratch::new();
        assert!(matches!(
            period_with(&net, &mut scratch, true),
            Err(AnalysisError::Deadlock { .. })
        ));
        let builds = scratch.csr_builds();
        assert!(matches!(
            period_patched_with(&net, &mut scratch, true, &[a]),
            Err(AnalysisError::Deadlock { .. })
        ));
        assert_eq!(scratch.csr_builds(), builds + 1, "error must invalidate the cache");
        // The scratch recovers fully once the net is live.
        net.clear();
        let a = net.add_transition(3.0, "a");
        let b = net.add_transition(5.0, "b");
        net.add_place(a, b, 1, "ab");
        net.add_place(b, a, 1, "ba");
        let sol = period_with(&net, &mut scratch, true).unwrap().unwrap();
        assert!((sol.period - 4.0).abs() < 1e-12);
    }

    #[test]
    fn patched_solves_skip_csr_and_tarjan() {
        // The headline counter check at this layer: after the rebuild
        // solve, a run of patched solves performs zero CSR builds and zero
        // Tarjan runs, warm or cold.
        for warm in [false, true] {
            let mut net = TimedEventGraph::new();
            let a = net.add_transition(2.0, "a");
            let b = net.add_transition(4.0, "b");
            net.add_place(a, b, 1, "ab");
            net.add_place(b, a, 1, "ba");
            let mut scratch = PeriodScratch::new();
            period_with(&net, &mut scratch, warm).unwrap();
            assert_eq!((scratch.csr_builds(), scratch.tarjan_runs()), (1, 1));
            for k in 1..=8u32 {
                net.patch(a, 2.0 + f64::from(k));
                period_patched_with(&net, &mut scratch, warm, &[a]).unwrap();
            }
            assert_eq!(
                (scratch.csr_builds(), scratch.tarjan_runs()),
                (1, 1),
                "warm={warm}: patched solves must be structurally free"
            );
        }
    }

    #[test]
    fn patch_returns_previous_time_and_updates() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(3.0, "a");
        net.add_place(a, a, 1, "self");
        assert_eq!(net.patch(a, 9.0), 3.0);
        let sol = period(&net).unwrap().unwrap();
        assert!((sol.period - 9.0).abs() < 1e-12);
    }

    fn firing_times(net: &TimedEventGraph) -> Vec<f64> {
        (0..net.num_transitions() as u32)
            .map(|t| net.transition(TransitionId(t)).firing_time)
            .collect()
    }

    #[test]
    fn period_batch_matches_cold_period_with_bitwise() {
        // One structure (chain + feedback + self-loop), k re-timed
        // instances per batch, two batches under one key: every result
        // must equal a cold rebuild solve bit for bit, and the second
        // batch must not condense again.
        let build = |net: &mut TimedEventGraph, ta: f64, tb: f64| {
            net.clear();
            let a = net.add_transition(ta, "a");
            let b = net.add_transition(tb, "b");
            let c = net.add_transition(6.0, "c");
            net.add_place(a, b, 0, "ab");
            net.add_place(b, c, 0, "bc");
            net.add_place(c, a, 2, "ca");
            net.add_place(b, b, 1, "bb");
        };
        let mut net = TimedEventGraph::new();
        let mut batch = PeriodBatch::new();
        let mut reference = PeriodScratch::new();
        for round in 0..2 {
            build(&mut net, 1.0, 1.0);
            batch.set_structure(&net, 3, 42);
            let mut solo = Vec::new();
            for q in 0..3 {
                let (ta, tb) = (1.0 + f64::from(round) + q as f64, 4.0 + 0.5 * q as f64);
                build(&mut net, ta, tb);
                batch.stage(q, &firing_times(&net));
                solo.push(period_with(&net, &mut reference, false).unwrap().unwrap());
            }
            let solved = batch.solve();
            for (q, (b, s)) in solved.iter().zip(&solo).enumerate() {
                let b = b.as_ref().unwrap().as_ref().unwrap();
                assert_eq!(b.period.to_bits(), s.period.to_bits(), "round {round} q {q}");
                assert_eq!(b.critical, s.critical, "round {round} q {q}");
                assert_eq!(b.cost.to_bits(), s.cost.to_bits(), "round {round} q {q}");
                assert_eq!(b.tokens, s.tokens, "round {round} q {q}");
            }
            assert_eq!(
                (batch.csr_builds(), batch.tarjan_runs()),
                (1, 1),
                "round {round}: one structural phase per shape"
            );
        }
    }

    #[test]
    fn period_batch_reports_deadlock_per_instance() {
        // A structure whose only circuit is token-free deadlocks every
        // instance with the same error `period` reports.
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(2.0, "b");
        net.add_place(a, b, 0, "ab");
        net.add_place(b, a, 0, "ba");
        let mut batch = PeriodBatch::new();
        batch.set_structure(&net, 2, 7);
        batch.stage(0, &[1.0, 2.0]);
        batch.stage(1, &[3.0, 4.0]);
        for res in batch.solve() {
            match res {
                Err(AnalysisError::Deadlock { circuit }) => assert_eq!(circuit.len(), 2),
                other => panic!("expected deadlock, got {other:?}"),
            }
        }
    }

    #[test]
    fn critical_cost_token_consistency() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(2.0, "a");
        let b = net.add_transition(10.0, "b");
        net.add_place(a, b, 1, "ab");
        net.add_place(b, a, 2, "ba");
        let sol = period(&net).unwrap().unwrap();
        assert!((sol.cost / sol.tokens as f64 - sol.period).abs() < 1e-12);
    }
}
