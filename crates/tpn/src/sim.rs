//! Exact earliest-firing simulation of a timed event graph.
//!
//! Under earliest-firing semantics a TEG is a deterministic max-plus linear
//! system: the `k`-th firing start of transition `t` is
//!
//! ```text
//! x_t(k) = max over input places p = (s → t, M_p tokens) of
//!          { x_s(k − M_p) + τ_s   if k ≥ M_p,   0 otherwise }
//! ```
//!
//! (an initial token is available at time 0; a produced token becomes
//! available a firing-duration `τ_s` after the producer starts). Simulating
//! the recurrence for enough firings exposes the steady-state regime, which
//! is eventually periodic: `x_t(k + c) = x_t(k) + c·P` for the cyclicity `c`.
//! This gives an estimator of the period that is completely independent of
//! the critical-cycle analysis, and the firing schedule itself yields Gantt
//! charts (paper Figures 7 and 12).

use crate::net::TimedEventGraph;

/// The earliest firing schedule of a net: `start[t][k]` is the start time of
/// the `k`-th firing (0-indexed) of transition `t`.
#[derive(Debug, Clone)]
pub struct FiringSchedule {
    /// `start[t]` is the vector of firing start times of transition `t`.
    pub start: Vec<Vec<f64>>,
    /// Firing durations copied from the net (`start[t][k] + duration[t]` is
    /// the completion time).
    pub duration: Vec<f64>,
}

impl FiringSchedule {
    /// Number of firings simulated per transition.
    pub fn num_firings(&self) -> usize {
        self.start.first().map_or(0, Vec::len)
    }

    /// Estimates the per-firing period of transition `t` over the window of
    /// the last `window` firings: `(x(K−1) − x(K−1−window)) / window`.
    pub fn period_estimate(&self, t: usize, window: usize) -> f64 {
        let xs = &self.start[t];
        let k = xs.len();
        assert!(window > 0 && window < k, "window must be within the simulated range");
        (xs[k - 1] - xs[k - 1 - window]) / window as f64
    }

    /// Checks exact linear periodicity with cyclicity `c` over the last
    /// firings: verifies `x(k+c) − x(k)` is the same (within `tol`) for all
    /// transitions and the last few `k`; returns the common increment `c·P`
    /// divided by `c` (i.e. the exact period) if so.
    pub fn exact_period(&self, c: usize, tol: f64) -> Option<f64> {
        let k = self.num_firings();
        if k < 2 * c + 1 {
            return None;
        }
        let mut val: Option<f64> = None;
        for xs in &self.start {
            for j in (k - c - 2)..(k - c) {
                let inc = (xs[j + c] - xs[j]) / c as f64;
                match val {
                    None => val = Some(inc),
                    Some(v) if (v - inc).abs() <= tol * v.abs().max(1.0) => {}
                    _ => return None,
                }
            }
        }
        val
    }
}

/// Simulates `k` firings of every transition under earliest-firing semantics.
///
/// Within one firing index, `x_t(k)` depends on `x_s(k)` across every
/// zero-token place `s → t`, so transitions are evaluated in a topological
/// order of the zero-token subgraph (acyclic for any live event graph —
/// a zero-token circuit is a deadlock, and the function panics on one).
///
/// Time is `O(k · places)`; memory `O(k · transitions)`.
pub fn simulate(net: &TimedEventGraph, k: usize) -> FiringSchedule {
    let n = net.num_transitions();
    let inputs = net.input_places();
    let mut start = vec![vec![0.0f64; k]; n];
    let duration: Vec<f64> = net.transitions().iter().map(|t| t.firing_time).collect();

    // Topological order of the zero-token dependences.
    let mut indeg = vec![0u32; n];
    let mut zero_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    for p in net.places() {
        if p.tokens == 0 {
            zero_out[p.pre.0 as usize].push(p.post.0);
            indeg[p.post.0 as usize] += 1;
        }
    }
    let mut order: Vec<u32> = (0..n as u32).filter(|&t| indeg[t as usize] == 0).collect();
    let mut head = 0;
    while head < order.len() {
        let v = order[head];
        head += 1;
        for &w in &zero_out[v as usize] {
            indeg[w as usize] -= 1;
            if indeg[w as usize] == 0 {
                order.push(w);
            }
        }
    }
    assert_eq!(
        order.len(),
        n,
        "zero-token circuit: the net deadlocks and has no earliest-firing schedule"
    );

    for firing in 0..k {
        for &t in &order {
            let t = t as usize;
            let mut ready = 0.0f64;
            for &pi in &inputs[t] {
                let p = &net.places()[pi as usize];
                let m = p.tokens as usize;
                if firing >= m {
                    let s = p.pre.0 as usize;
                    let cand = start[s][firing - m] + duration[s];
                    if cand > ready {
                        ready = cand;
                    }
                }
            }
            start[t][firing] = ready;
        }
    }
    FiringSchedule { start, duration }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::period;
    use crate::net::TimedEventGraph;

    fn ping_pong(ta: f64, tb: f64) -> TimedEventGraph {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(ta, "a");
        let b = net.add_transition(tb, "b");
        net.add_place(a, b, 1, "ab");
        net.add_place(b, a, 1, "ba");
        net
    }

    #[test]
    fn schedule_matches_hand_computation() {
        // a: 3, b: 5, one token in each direction.
        // x_a(0) = 0 (initial tokens), x_b(0) = 0.
        // x_a(1) = x_b(0)+5 = 5; x_b(1) = x_a(0)+3 = 3.
        // x_a(2) = x_b(1)+5 = 8; x_b(2) = x_a(1)+3 = 8.
        let s = simulate(&ping_pong(3.0, 5.0), 3);
        assert_eq!(s.start[0], vec![0.0, 5.0, 8.0]);
        assert_eq!(s.start[1], vec![0.0, 3.0, 8.0]);
    }

    #[test]
    fn simulated_period_matches_analysis() {
        let net = ping_pong(3.0, 5.0);
        let s = simulate(&net, 200);
        let p = period(&net).unwrap().unwrap().period;
        let est = s.period_estimate(0, 50);
        assert!((est - p).abs() < 1e-9, "est {est} vs analytic {p}");
        // The critical circuit carries 2 tokens, so firing increments
        // alternate (5, 3, 5, 3, …): the schedule is periodic of cyclicity 2.
        assert_eq!(s.exact_period(1, 1e-9), None);
        let exact = s.exact_period(2, 1e-9).unwrap();
        assert!((exact - p).abs() < 1e-9);
    }

    #[test]
    fn cyclicity_two_system() {
        // Two parallel servers fed round-robin by a fast source: the firing
        // increments alternate, but over cyclicity 2 the period is exact.
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(10.0, "b");
        let c = net.add_transition(4.0, "c");
        // a -> b -> a (tokens 1 each way), a -> c -> a (tokens 2 one way)
        net.add_place(a, b, 0, "ab");
        net.add_place(b, a, 1, "ba");
        net.add_place(a, c, 0, "ac");
        net.add_place(c, a, 2, "ca");
        let p = period(&net).unwrap().unwrap().period;
        let s = simulate(&net, 400);
        let est = s.period_estimate(0, 100);
        assert!((est - p).abs() < 1e-6, "est {est} vs analytic {p}");
    }

    #[test]
    fn source_transition_fires_at_zero() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(2.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, b, 0, "ab");
        // `a` has no inputs: fires at 0 every time (lint flags this).
        let s = simulate(&net, 4);
        assert_eq!(s.start[0], vec![0.0; 4]);
        assert_eq!(s.start[1], vec![2.0; 4]);
        assert_eq!(net.lint().len(), 1);
    }

    #[test]
    fn multi_token_place_skews_start() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(5.0, "a");
        net.add_place(a, a, 3, "self");
        let s = simulate(&net, 7);
        // 3 tokens: firings 0..3 start at 0; firing k starts at x(k-3)+5.
        assert_eq!(s.start[0], vec![0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 10.0]);
    }

    #[test]
    fn zero_token_place_against_index_order() {
        // Regression: a zero-token place whose pre has a HIGHER id than its
        // post must still be honoured within the same firing index.
        let mut net = TimedEventGraph::new();
        let early = net.add_transition(1.0, "early"); // id 0
        let late = net.add_transition(5.0, "late"); // id 1
        // late feeds early with 0 tokens; each has a recycling self-loop.
        net.add_place(late, early, 0, "back");
        net.add_place(early, early, 1, "sa");
        net.add_place(late, late, 1, "sb");
        let s = simulate(&net, 4);
        // early(k) = late(k) + 5 = 5k + 5; with the stale-read bug it
        // would start at 0.
        assert_eq!(s.start[1], vec![0.0, 5.0, 10.0, 15.0]);
        assert_eq!(s.start[0], vec![5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "deadlocks")]
    fn zero_token_circuit_panics() {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, b, 0, "ab");
        net.add_place(b, a, 0, "ba");
        let _ = simulate(&net, 2);
    }
}
