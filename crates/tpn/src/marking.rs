//! The token game: untimed marking dynamics of an event graph.
//!
//! Beyond timing analysis, the construction of §3 relies on structural
//! properties of the marking: every circuit's token count is invariant
//! under firing (the P-invariants of an event graph are exactly its
//! circuits), and liveness is equivalent to every circuit carrying at
//! least one token. This module provides an explicit token game to test
//! those properties and to animate small nets.

use crate::net::{PlaceId, TimedEventGraph, TransitionId};

/// A mutable marking over a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Marking {
    tokens: Vec<u64>,
}

impl Marking {
    /// The initial marking of a net.
    pub fn initial(net: &TimedEventGraph) -> Self {
        Marking { tokens: net.places().iter().map(|p| u64::from(p.tokens)).collect() }
    }

    /// Tokens currently in a place.
    pub fn tokens(&self, p: PlaceId) -> u64 {
        self.tokens[p.0 as usize]
    }

    /// Total tokens.
    pub fn total(&self) -> u64 {
        self.tokens.iter().sum()
    }
}

/// The token game over a fixed net.
#[derive(Debug, Clone)]
pub struct TokenGame<'a> {
    net: &'a TimedEventGraph,
    marking: Marking,
    inputs: Vec<Vec<u32>>,
    outputs: Vec<Vec<u32>>,
    fired: Vec<u64>,
}

impl<'a> TokenGame<'a> {
    /// Starts the game at the net's initial marking.
    pub fn new(net: &'a TimedEventGraph) -> Self {
        let inputs = net.input_places();
        let mut outputs = vec![Vec::new(); net.num_transitions()];
        for (i, p) in net.places().iter().enumerate() {
            outputs[p.pre.0 as usize].push(i as u32);
        }
        TokenGame {
            net,
            marking: Marking::initial(net),
            inputs,
            outputs,
            fired: vec![0; net.num_transitions()],
        }
    }

    /// The current marking.
    pub fn marking(&self) -> &Marking {
        &self.marking
    }

    /// Firing count of a transition so far.
    pub fn fired(&self, t: TransitionId) -> u64 {
        self.fired[t.0 as usize]
    }

    /// True iff `t` is enabled (every input place holds a token).
    pub fn enabled(&self, t: TransitionId) -> bool {
        self.inputs[t.0 as usize].iter().all(|&p| self.marking.tokens[p as usize] > 0)
    }

    /// All currently enabled transitions.
    pub fn enabled_transitions(&self) -> Vec<TransitionId> {
        (0..self.net.num_transitions() as u32)
            .map(TransitionId)
            .filter(|&t| self.enabled(t))
            .collect()
    }

    /// Fires `t`; returns `false` (and changes nothing) if disabled.
    pub fn fire(&mut self, t: TransitionId) -> bool {
        if !self.enabled(t) {
            return false;
        }
        for &p in &self.inputs[t.0 as usize] {
            self.marking.tokens[p as usize] -= 1;
        }
        for &p in &self.outputs[t.0 as usize] {
            self.marking.tokens[p as usize] += 1;
        }
        self.fired[t.0 as usize] += 1;
        true
    }

    /// Token count along an explicit circuit given as a list of place ids
    /// (must be a circuit for the invariant to hold).
    pub fn circuit_tokens(&self, places: &[PlaceId]) -> u64 {
        places.iter().map(|&p| self.marking.tokens(p)).sum()
    }
}

/// Finds some circuits of the net (as place-id lists) by walking the
/// place graph — used to exercise the conservation invariant in tests.
pub fn sample_circuits(net: &TimedEventGraph, max: usize) -> Vec<Vec<PlaceId>> {
    // DFS over transitions; a back-edge closes a circuit of places.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); net.num_transitions()];
    for (i, p) in net.places().iter().enumerate() {
        adj[p.pre.0 as usize].push((p.post.0, i as u32));
    }
    let n = net.num_transitions();
    let mut circuits = Vec::new();
    let mut color = vec![0u8; n];
    let mut parent_place: Vec<u32> = vec![u32::MAX; n];
    let mut parent_node: Vec<u32> = vec![u32::MAX; n];
    for root in 0..n as u32 {
        if color[root as usize] != 0 || circuits.len() >= max {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root as usize] = 1;
        while let Some(&mut (v, ref mut pos)) = stack.last_mut() {
            if circuits.len() >= max {
                break;
            }
            if *pos < adj[v as usize].len() {
                let (w, pid) = adj[v as usize][*pos];
                *pos += 1;
                match color[w as usize] {
                    0 => {
                        color[w as usize] = 1;
                        parent_place[w as usize] = pid;
                        parent_node[w as usize] = v;
                        stack.push((w, 0));
                    }
                    1 => {
                        // circuit w → … → v → w
                        let mut places = vec![PlaceId(pid)];
                        let mut u = v;
                        while u != w {
                            places.push(PlaceId(parent_place[u as usize]));
                            u = parent_node[u as usize];
                        }
                        places.reverse();
                        circuits.push(places);
                    }
                    _ => {}
                }
            } else {
                color[v as usize] = 2;
                stack.pop();
            }
        }
    }
    circuits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(tokens: [u32; 3]) -> TimedEventGraph {
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        let c = net.add_transition(1.0, "c");
        net.add_place(a, b, tokens[0], "ab");
        net.add_place(b, c, tokens[1], "bc");
        net.add_place(c, a, tokens[2], "ca");
        net
    }

    #[test]
    fn enabled_and_fire() {
        let net = ring([1, 0, 0]);
        let mut game = TokenGame::new(&net);
        assert!(game.enabled(TransitionId(1)), "b has its input token");
        assert!(!game.enabled(TransitionId(0)), "a waits on ca");
        assert!(game.fire(TransitionId(1)));
        assert_eq!(game.marking().tokens(PlaceId(0)), 0);
        assert_eq!(game.marking().tokens(PlaceId(1)), 1);
        assert!(!game.fire(TransitionId(1)), "cannot fire twice in a row");
    }

    #[test]
    fn total_tokens_conserved_on_ring() {
        // A pure circuit conserves its total marking under any firing.
        let net = ring([2, 1, 0]);
        let mut game = TokenGame::new(&net);
        for _ in 0..50 {
            let enabled = game.enabled_transitions();
            assert!(!enabled.is_empty(), "live ring");
            let t = enabled[0];
            assert!(game.fire(t));
            assert_eq!(game.marking().total(), 3);
        }
    }

    #[test]
    fn circuit_invariant_under_random_firing() {
        // A net with two joined circuits: each circuit's token count is a
        // P-invariant even though the total distribution moves around.
        let mut net = TimedEventGraph::new();
        let a = net.add_transition(1.0, "a");
        let b = net.add_transition(1.0, "b");
        net.add_place(a, b, 1, "ab");
        net.add_place(b, a, 1, "ba");
        net.add_place(a, a, 1, "self");
        let circuits = sample_circuits(&net, 8);
        assert!(!circuits.is_empty());
        let mut game = TokenGame::new(&net);
        let baseline: Vec<u64> = circuits.iter().map(|c| game.circuit_tokens(c)).collect();
        let mut rngish = 7usize;
        for _ in 0..200 {
            let enabled = game.enabled_transitions();
            assert!(!enabled.is_empty());
            rngish = rngish.wrapping_mul(6364136223846793005).wrapping_add(1);
            let t = enabled[rngish % enabled.len()];
            game.fire(t);
            for (c, &base) in circuits.iter().zip(&baseline) {
                assert_eq!(game.circuit_tokens(c), base, "circuit marking must be invariant");
            }
        }
    }

    #[test]
    fn deadlocked_net_has_no_enabled() {
        let net = ring([0, 0, 0]);
        let game = TokenGame::new(&net);
        assert!(game.enabled_transitions().is_empty());
    }

    #[test]
    fn sample_circuits_finds_ring() {
        let net = ring([1, 1, 1]);
        let circuits = sample_circuits(&net, 4);
        assert_eq!(circuits.len(), 1);
        assert_eq!(circuits[0].len(), 3);
    }

    #[test]
    fn fired_counts_balance_on_event_graph() {
        // In an event graph, |fired(pre) − fired(post)| ≤ marking bound.
        let net = ring([1, 1, 0]);
        let mut game = TokenGame::new(&net);
        for _ in 0..100 {
            let enabled = game.enabled_transitions();
            let t = enabled[0];
            game.fire(t);
        }
        for p in net.places() {
            let diff = game.fired(p.pre) as i64 - game.fired(p.post) as i64;
            // tokens now = initial + diff; must be non-negative and small.
            let now = game.marking().tokens(PlaceId(
                net.places().iter().position(|q| std::ptr::eq(p, q)).unwrap() as u32,
            ));
            assert_eq!(now as i64, i64::from(p.tokens) + diff);
        }
    }
}
