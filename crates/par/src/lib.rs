//! **repwf-par** — a small work-stealing parallel-map executor.
//!
//! The experiment campaigns of `repwf-gen` are embarrassingly parallel but
//! heavily *imbalanced*: one experiment may solve in microseconds with the
//! polynomial algorithm while its neighbour falls back to a 20 000-data-set
//! simulation. A static partition of the seed space therefore leaves cores
//! idle; this crate provides the work-stealing `par_map` that replaced the
//! original hand-rolled scoped-thread loops.
//!
//! # Design
//!
//! * Each worker owns a deque of *index ranges*. Work starts evenly
//!   partitioned; a worker takes single indices from the **back** of its own
//!   deque and, when empty, steals **half of the front range** of a victim —
//!   the classic split-task scheme (cf. rayon / Bobpp's deterministic
//!   partitioning), implemented here with `std` mutexes because tasks are
//!   coarse (µs–ms each).
//! * Results are keyed by index: the output `Vec` is in input order and
//!   **bit-identical for every thread count**, provided the mapped closure
//!   derives all randomness from its index (the campaign engine seeds one
//!   RNG per experiment).
//! * No `unsafe`, no dependencies; scoped threads keep borrows alive.
//!
//! ```
//! let squares = repwf_par::par_map(4, 100, |i| i * i);
//! assert_eq!(squares[7], 49);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A half-open index range `[start, end)` owned by a worker deque.
type Span = (usize, usize);

/// Number of hardware threads (fallback 4 when undetectable).
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Applies `f` to every index in `0..n` on `threads` workers with work
/// stealing, returning the results in index order.
///
/// The result is independent of `threads` and of the stealing schedule as
/// long as `f` itself is a pure function of its index.
pub fn par_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_init(threads, n, || (), |(), i| f(i))
}

/// [`par_map`] with **per-worker state**: every worker thread calls
/// `init()` once at startup and hands the resulting value to each of its
/// `f(&mut state, index)` invocations.
///
/// This is how the campaign engine keeps one `PeriodEngine` arena per
/// worker: the expensive scratch buffers are created `threads` times
/// instead of `n` times, stay thread-local (no `Send` bound on `S`), and
/// follow the work wherever stealing moves it.
///
/// Determinism caveat: the state makes it possible for `f` to depend on
/// which indices a worker saw previously. If results must be independent
/// of the thread count and stealing schedule, `f(&mut s, i)` has to be a
/// pure function of `i` — state may cache *allocations*, not *answers*.
pub fn par_map_init<T, S, I, F>(threads: usize, n: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }

    // Even initial partition: worker w starts with one contiguous span.
    let mut deques: Vec<Mutex<VecDeque<Span>>> = Vec::with_capacity(threads);
    let (chunk, rem) = (n / threads, n % threads);
    let mut start = 0;
    for w in 0..threads {
        let len = chunk + usize::from(w < rem);
        let mut deque = VecDeque::with_capacity(4);
        if len > 0 {
            deque.push_back((start, start + len));
        }
        deques.push(Mutex::new(deque));
        start += len;
    }
    debug_assert_eq!(start, n);

    // First panic payload of any worker; re-raised on the caller's thread.
    let panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let aborted = AtomicBool::new(false);
    let deques = &deques;
    let panic = &panic;
    let aborted = &aborted;
    let f = &f;

    let init = &init;
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || worker(w, threads, deques, panic, aborted, n, init, f)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("par_map worker died")).collect()
    });

    if let Some(payload) = panic.lock().expect("panic slot poisoned").take() {
        resume_unwind(payload);
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for part in parts {
        for (i, v) in part {
            debug_assert!(out[i].is_none(), "index {i} computed twice");
            out[i] = Some(v);
        }
    }
    out.into_iter().map(|o| o.expect("all indices computed")).collect()
}

#[allow(clippy::too_many_arguments)]
fn worker<T, S, I, F>(
    me: usize,
    threads: usize,
    deques: &[Mutex<VecDeque<Span>>],
    panic: &Mutex<Option<Box<dyn std::any::Any + Send>>>,
    aborted: &AtomicBool,
    n: usize,
    init: &I,
    f: &F,
) -> Vec<(usize, T)>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let mut state = init();
    let mut local: Vec<(usize, T)> = Vec::with_capacity(n / threads + 2);
    // Termination needs no idle spinning: remainder spans are re-queued
    // under the same lock acquisition that pops them, and only a deque's
    // owner pushes into it, so work never hides outside every deque for
    // longer than a thief's own re-queue. When both pop and steal come up
    // empty the visible work is gone and this worker can leave; whoever
    // holds the last spans drains them before leaving too.
    while !aborted.load(Ordering::Acquire) {
        let Some(i) = pop_own(&deques[me]).or_else(|| steal(me, threads, deques)) else {
            break;
        };
        match catch_unwind(AssertUnwindSafe(|| f(&mut state, i))) {
            Ok(v) => local.push((i, v)),
            Err(payload) => {
                panic.lock().expect("panic slot poisoned").get_or_insert(payload);
                aborted.store(true, Ordering::Release);
                break;
            }
        }
    }
    local
}

/// Takes one index from the back of the worker's own deque.
fn pop_own(deque: &Mutex<VecDeque<Span>>) -> Option<usize> {
    let mut q = deque.lock().expect("deque poisoned");
    let (a, b) = q.pop_back()?;
    if a + 1 < b {
        q.push_back((a + 1, b));
    }
    Some(a)
}

/// Steals half of the front span of the first non-empty victim; the stolen
/// remainder goes to the thief's own deque.
fn steal(me: usize, threads: usize, deques: &[Mutex<VecDeque<Span>>]) -> Option<usize> {
    for k in 1..threads {
        let victim = (me + k) % threads;
        let stolen = {
            let mut q = deques[victim].lock().expect("deque poisoned");
            match q.pop_front() {
                Some((a, b)) if b - a > 1 => {
                    let mid = a + (b - a) / 2;
                    q.push_front((mid, b)); // victim keeps the back half
                    Some((a, mid))
                }
                other => other,
            }
        };
        if let Some((a, b)) = stolen {
            if a + 1 < b {
                deques[me].lock().expect("deque poisoned").push_back((a + 1, b));
            }
            return Some(a);
        }
    }
    None
}

/// [`par_map_init`] with an **in-order streaming consumer**: `consume(i,
/// &result_i)` fires for every index in strictly increasing order (0, 1,
/// 2, …) as soon as the contiguous prefix of results is complete, while
/// later indices are still being computed.
///
/// This is the primitive behind the shard writers of `repwf-dist`: a
/// campaign shard streams outcomes to an append-only NDJSON file **in
/// seed order** regardless of the work-stealing schedule, so a killed
/// process always leaves a valid, resumable prefix on disk.
///
/// Completed out-of-order results wait in a reorder buffer (one slot per
/// index) guarded by a mutex; `consume` runs under that lock, so it sees
/// indices in order even when called from different worker threads —
/// keep it short (an append + checksum update, not a solve). The
/// returned `Vec` is in index order, exactly like [`par_map_init`].
pub fn par_map_init_ordered<T, S, I, F, C>(
    threads: usize,
    n: usize,
    init: I,
    f: F,
    consume: C,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
    C: Fn(usize, &T) + Sync,
{
    struct Reorder<T> {
        slots: Vec<Option<T>>,
        /// First index not yet handed to `consume`.
        next: usize,
    }
    let reorder = Mutex::new(Reorder { slots: (0..n).map(|_| None).collect(), next: 0 });
    par_map_init(threads, n, init, |state, i| {
        let v = f(state, i);
        let mut r = reorder.lock().expect("reorder buffer poisoned");
        debug_assert!(r.slots[i].is_none(), "index {i} computed twice");
        r.slots[i] = Some(v);
        while r.next < n {
            let Some(done) = r.slots[r.next].as_ref() else { break };
            consume(r.next, done);
            r.next += 1;
        }
    });
    let r = reorder.into_inner().expect("reorder buffer poisoned");
    debug_assert_eq!(r.next, n, "ordered drain incomplete");
    r.slots.into_iter().map(|o| o.expect("all indices computed")).collect()
}

/// [`par_map_init`] followed by a **sequential fold in index order** on
/// the calling thread: `fold(acc, i, result_i)` sees index 0, then 1, …
/// regardless of the work-stealing schedule or the thread count.
///
/// This is the deterministic-partitioning primitive of the exact
/// branch-and-bound search (`repwf_map::exact`, after Bobpp's
/// statically-numbered subtree scheme): the search tree is split into
/// tasks numbered *before* execution, each task's result is a pure
/// function of its index (per-worker state caches allocations, never
/// answers), and the incumbent merge — which need not be commutative,
/// e.g. "first error wins" or "lexicographic tie-break against the
/// current best" — happens here, in a fixed order. The folded value is
/// therefore bit-identical at 1, 2, or N workers.
pub fn par_map_init_reduce<T, S, I, F, A, R>(
    threads: usize,
    n: usize,
    init: I,
    f: F,
    acc: A,
    mut fold: R,
) -> A
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
    R: FnMut(A, usize, T) -> A,
{
    par_map_init(threads, n, init, f)
        .into_iter()
        .enumerate()
        .fold(acc, |acc, (i, v)| fold(acc, i, v))
}

/// [`par_map`] with a completion callback: `progress(done)` fires after
/// every finished item with the running completion count (monotone but
/// unordered — items finish in schedule order, not index order).
pub fn par_map_progress<T, F, P>(threads: usize, n: usize, f: F, progress: P) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    P: Fn(usize) + Sync,
{
    let done = AtomicUsize::new(0);
    par_map(threads, n, |i| {
        let v = f(i);
        progress(done.fetch_add(1, Ordering::AcqRel) + 1);
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn per_worker_state_initialized_once_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let out = par_map_init(
            4,
            64,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                Vec::<usize>::new() // per-worker scratch
            },
            |scratch, i| {
                scratch.clear();
                scratch.extend(0..=i);
                scratch.iter().sum::<usize>()
            },
        );
        assert_eq!(out, (0..64).map(|i| i * (i + 1) / 2).collect::<Vec<_>>());
        let created = inits.load(Ordering::SeqCst);
        assert!(created <= 4, "one state per worker, got {created}");
    }

    #[test]
    fn matches_serial_map() {
        let serial: Vec<usize> = (0..1000).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(threads, 1000, |i| i * 3 + 1), serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(par_map(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(8, 1, |i| i + 5), vec![5]);
        assert_eq!(par_map(1, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn imbalanced_work_completes() {
        // Front-loaded work forces stealing from the first worker's span.
        let out = par_map(4, 64, |i| {
            if i < 8 {
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_add(k ^ i as u64);
                }
                acc & 1
            } else {
                i as u64 & 1
            }
        });
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn progress_reaches_total() {
        let peak = AtomicUsize::new(0);
        let n = 257;
        par_map_progress(3, n, |i| i, |done| {
            peak.fetch_max(done, Ordering::Relaxed);
        });
        assert_eq!(peak.load(Ordering::Relaxed), n);
    }

    #[test]
    fn ordered_consume_sees_indices_in_order() {
        // Front-loaded imbalance forces heavy stealing, so late indices
        // routinely finish before early ones — the consumer must still
        // observe 0, 1, 2, … and every index exactly once.
        for threads in [1, 2, 4, 8] {
            let seen = Mutex::new(Vec::new());
            let out = par_map_init_ordered(
                threads,
                97,
                || (),
                |(), i| {
                    if i < 8 {
                        let mut acc = 0u64;
                        for k in 0..100_000u64 {
                            acc = acc.wrapping_add(k ^ i as u64);
                        }
                        std::hint::black_box(acc);
                    }
                    i * 2
                },
                |i, &v| {
                    assert_eq!(v, i * 2);
                    seen.lock().unwrap().push(i);
                },
            );
            assert_eq!(out, (0..97).map(|i| i * 2).collect::<Vec<_>>(), "threads={threads}");
            let seen = seen.into_inner().unwrap();
            assert_eq!(seen, (0..97).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn ordered_consume_handles_empty_and_tiny_inputs() {
        let calls = AtomicUsize::new(0);
        let out: Vec<usize> =
            par_map_init_ordered(4, 0, || (), |(), i| i, |_, _| {
                calls.fetch_add(1, Ordering::SeqCst);
            });
        assert!(out.is_empty());
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        let out = par_map_init_ordered(4, 1, || (), |(), i| i + 9, |i, &v| {
            assert_eq!((i, v), (0, 9));
        });
        assert_eq!(out, vec![9]);
    }

    #[test]
    fn reduce_with_noncommutative_fold_is_thread_count_independent() {
        // String concatenation is order-sensitive: only an index-ordered
        // fold gives the same answer at every thread count.
        let reference: String = (0..40).map(|i| format!("[{i}]")).collect();
        for threads in [1, 2, 4, 16] {
            let folded = par_map_init_reduce(
                threads,
                40,
                || (),
                |(), i| {
                    if i % 7 == 0 {
                        // Imbalance to provoke out-of-order completion.
                        std::hint::black_box((0..50_000u64).sum::<u64>());
                    }
                    format!("[{i}]")
                },
                String::new(),
                |mut acc, i, s| {
                    assert_eq!(s, format!("[{i}]"));
                    acc.push_str(&s);
                    acc
                },
            );
            assert_eq!(folded, reference, "threads={threads}");
        }
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(par_map(32, 5, |i| i * i), vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn closure_panic_propagates() {
        // A panicking task must fail the whole par_map loudly (not hang).
        let caught = std::panic::catch_unwind(|| {
            par_map(4, 100, |i| {
                assert!(i != 57, "boom at {i}");
                i
            })
        });
        let payload = caught.expect_err("panic must propagate to the caller");
        let message = payload.downcast_ref::<String>().expect("panic message");
        assert!(message.contains("boom at 57"), "{message}");
    }
}
