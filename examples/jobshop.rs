//! The TPN substrate beyond workflows: a cyclic job-shop.
//!
//! The paper's TPN model "is the same flavor as what has been done to model
//! jobshops with static schedules" (Hillion & Proth 1989 — its reference
//! [8]). This example uses the `tpn` crate directly on a classical cyclic
//! job-shop: two machines, three parts per cycle with fixed routes, a
//! static processing order on each machine. The steady-state cycle time is
//! the maximum circuit ratio; the earliest-firing simulator confirms it and
//! the marking API exposes the invariants.
//!
//! Parts (one of each enters per cycle):
//!   part A: M1 (3) then M2 (2)
//!   part B: M2 (4) then M1 (1)
//!   part C: M1 (2)
//! Machine orders per cycle: M1: A, C, B — M2: B, A.
//!
//! Run with: `cargo run --release -p repwf-bench --example jobshop`

use tpn::analysis::period;
use tpn::bounds::summary;
use tpn::net::TimedEventGraph;
use tpn::sim::simulate;

fn main() {
    let mut net = TimedEventGraph::new();
    // operations (transitions)
    let a1 = net.add_transition(3.0, "A on M1");
    let a2 = net.add_transition(2.0, "A on M2");
    let b1 = net.add_transition(4.0, "B on M2");
    let b2 = net.add_transition(1.0, "B on M1");
    let c1 = net.add_transition(2.0, "C on M1");

    // part routes (one token = one part in flight between its operations;
    // the wrap place releases the next cycle's part)
    net.add_place(a1, a2, 0, "A route");
    net.add_place(a2, a1, 1, "A next part");
    net.add_place(b1, b2, 0, "B route");
    net.add_place(b2, b1, 1, "B next part");
    net.add_place(c1, c1, 1, "C next part");

    // machine schedules (static order, one token on the wrap-around)
    net.add_place(a1, c1, 0, "M1: A then C");
    net.add_place(c1, b2, 0, "M1: C then B");
    net.add_place(b2, a1, 1, "M1 wrap");
    net.add_place(b1, a2, 0, "M2: B then A");
    net.add_place(a2, b1, 1, "M2 wrap");

    let sol = period(&net).expect("live net").expect("cyclic net");
    println!("cyclic job-shop: 5 operations, 2 machines, 3 parts per cycle");
    println!(
        "cycle time = {:.2} (critical circuit: {} ops, {} tokens)",
        sol.period,
        sol.critical.len(),
        sol.tokens
    );
    print!("critical circuit:");
    for t in &sol.critical {
        print!(" [{}]", net.transition(*t).label);
    }
    println!();

    // Machine utilizations at the steady cycle time.
    let m1_busy = 3.0 + 1.0 + 2.0;
    let m2_busy = 2.0 + 4.0;
    println!("M1 utilization: {:.0}%", 100.0 * m1_busy / sol.period);
    println!("M2 utilization: {:.0}%", 100.0 * m2_busy / sol.period);

    // Cross-check with the earliest-firing simulator.
    let schedule = simulate(&net, 300);
    let est = schedule.period_estimate(a1.0 as usize, 100);
    println!("simulated cycle time: {est:.4}");
    assert!((est - sol.period).abs() < 1e-9);

    // Structural bounds: every place of a closed job-shop is bounded.
    let s = summary(&net);
    println!(
        "place bounds: {} bounded (max {}), {} unbounded",
        s.bounded, s.max_bound, s.unbounded
    );
    assert_eq!(s.unbounded, 0, "closed system: all WIP is bounded");
}
