//! The operational meaning of the period: feed the system a clocked input
//! stream and watch the buffers.
//!
//! The paper defines the period `P̂` as the interval at which new data sets
//! can sustainably enter the system. This example computes `P̂` for Example
//! B, then drives the simulator with inter-arrival times above, at, and
//! below `P̂`:
//!
//! * above/at `P̂`: backlog and per-link buffers stay bounded, sojourn
//!   times settle;
//! * below `P̂` (even by 2%): the backlog grows linearly without bound —
//!   the system genuinely cannot go faster, even though (Example B!) every
//!   single resource still has idle time.
//!
//! Run with: `cargo run --release -p repwf-bench --example clocked_stream`

use repwf_core::fixtures::example_b;
use repwf_core::latency::latency_report;
use repwf_core::model::CommModel;
use repwf_core::period::{compute_period, Method};
use repwf_sim::clocked::simulate_clocked;

fn main() {
    let inst = example_b();
    let model = CommModel::Overlap;
    let report = compute_period(&inst, model, Method::Auto).expect("analysis");
    let lat = latency_report(&inst, 64);
    println!("Example B, overlap one-port");
    println!("computed period P̂ = {:.4}  (M_ct = {:.4})", report.period, report.mct);
    println!(
        "unloaded path latency: min {:.1} / mean {:.1} / max {:.1} over {} paths\n",
        lat.min, lat.mean, lat.max, lat.paths
    );

    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>12}",
        "arrival T", "vs P̂", "max backlog", "tail sojourn", "max buffer"
    );
    for factor in [1.25, 1.05, 1.0, 0.98, 0.9] {
        let t = report.period * factor;
        let res = simulate_clocked(&inst, model, t, 6000);
        println!(
            "{:>12.2} {:>13.0}% {:>14} {:>14.1} {:>12}",
            t,
            100.0 * factor,
            res.max_backlog,
            res.tail_sojourn(),
            res.max_buffer.iter().max().copied().unwrap_or(0)
        );
    }
    println!("\nat or above P̂ the backlog is flat; 2% below it already diverges —");
    println!("the TPN critical cycle is exactly the sustainable input rate.");
}
