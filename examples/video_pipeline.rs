//! A realistic streaming scenario: a video transcoding farm, as a
//! fork/join series-parallel workflow.
//!
//! The paper motivates replicated workflows with streaming applications
//! such as video encoding/decoding. This example models a 6-stage
//! transcoding workflow on a 12-machine heterogeneous cluster: the demuxer
//! forks the container into a video branch (decode → filter → encode) and
//! an audio branch (transcode), and the muxer joins the two elementary
//! streams back together:
//!
//! ```text
//!          ┌─ decode ── filter ── encode ─┐
//!   demux ─┤                              ├─ mux
//!          └───────── audio ──────────────┘
//! ```
//!
//! The expensive decode and encode stages are replicated, and the example
//! studies how the throughput responds:
//!
//! 1. the period under both communication models, solved through a reused
//!    [`PeriodEngine`] (one engine, many instances),
//! 2. the per-resource cycle-time decomposition (where the time goes),
//! 3. a what-if sweep over the number of encoder replicas, showing the
//!    round-robin effect: beyond the bandwidth bottleneck, more replicas
//!    stop helping.
//!
//! Run with: `cargo run --release -p repwf-bench --example video_pipeline`

use repwf_core::cycle_time::cycle_times;
use repwf_core::engine::PeriodEngine;
use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::Method;

fn platform() -> Platform {
    // 12 machines: 4 fast (3 GFLOP-ish), 8 slower; 1 Gb/s-ish links, with a
    // slower cross-rack group.
    let mut p = Platform::uniform(12, 1.5, 120.0);
    for u in 0..4 {
        p.set_speed(u, 3.0);
    }
    for u in 0..12 {
        for v in 6..12 {
            if u < 6 {
                p.set_bandwidth(u, v, 60.0); // cross-rack
                p.set_bandwidth(v, u, 60.0);
            }
        }
    }
    p
}

fn workflow() -> Pipeline {
    // Stages: 0 demux, 1 decode, 2 filter, 3 encode, 4 audio, 5 mux.
    // Works (GFLOP per frame batch) and file sizes (MB per batch). The
    // filter hands *raw* frames to the encoders — the big transfer; the
    // audio branch is cheap and small.
    Pipeline::from_edges(
        vec![30.0, 420.0, 90.0, 660.0, 45.0, 24.0],
        vec![
            (0, 1, 50.0),   // video elementary stream
            (0, 4, 8.0),    // audio elementary stream
            (1, 2, 180.0),  // decoded frames
            (2, 3, 9000.0), // raw filtered frames
            (3, 5, 40.0),   // encoded video
            (4, 5, 6.0),    // encoded audio
        ],
    )
    .expect("valid fork/join workflow")
}

fn mapping(encoders: usize) -> Mapping {
    // P0: demux, P1+P2: decode, P3: filter, P4..: encode, P10: audio,
    // P11: mux.
    assert!((1..=6).contains(&encoders));
    let enc: Vec<usize> = (4..4 + encoders).collect();
    Mapping::new(vec![vec![0], vec![1, 2], vec![3], enc, vec![10], vec![11]])
        .expect("valid mapping")
}

fn main() {
    let (wf, farm) = (workflow(), platform());
    // One engine for the whole example: every solve below reuses its
    // buffers (and, where shapes repeat, its patched TPN).
    let mut engine = PeriodEngine::new();

    println!("video transcoding farm: fork/join, 6 stages, decode x2, encode x3\n");
    for model in [CommModel::Overlap, CommModel::Strict] {
        let r = engine
            .compute_mapping(&wf, &farm, &mapping(3), model, Method::Auto)
            .expect("analysis");
        println!(
            "{model:<22} period {:>8.3}  throughput {:>7.4}  M_ct {:>8.3}  critical: {}",
            r.period,
            r.throughput(),
            r.mct,
            r.critical
        );
    }

    println!("\nper-resource cycle times (overlap normalization, per data set):");
    println!(
        "{:<6} {:<7} {:>10} {:>10} {:>10} {:>10}",
        "proc", "stage", "C_in", "C_comp", "C_out", "C_exec"
    );
    let inst = Instance::new(wf.clone(), farm.clone(), mapping(3)).expect("valid instance");
    for ct in cycle_times(&inst) {
        println!(
            "P{:<5} S{:<6} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            ct.proc,
            ct.stage,
            ct.c_in,
            ct.c_comp,
            ct.c_out,
            ct.exec(CommModel::Overlap)
        );
    }

    println!("\nencoder-replica sweep (overlap model):");
    println!("{:>9} {:>10} {:>12} {:>8}", "encoders", "period", "throughput", "m");
    for k in 1..=6 {
        let r = engine
            .compute_mapping(&wf, &farm, &mapping(k), CommModel::Overlap, Method::Auto)
            .expect("analysis");
        println!("{k:>9} {:>10.3} {:>12.4} {:>8}", r.period, r.throughput(), r.num_paths);
    }
    println!("\nthe audio branch rides along for free — the video branch owns the critical");
    println!("resource throughout. The gain stops tracking 1/k once the filter's one-port");
    println!("output saturates on raw-frame transfers — and *worsens* when extra replicas");
    println!("sit across the slow rack link: under round-robin, a replica you cannot feed");
    println!("is a liability.");
}
