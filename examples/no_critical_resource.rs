//! The paper's headline phenomenon, end to end: a mapping where the period
//! strictly exceeds EVERY resource's cycle-time, so all resources idle.
//!
//! Uses Example B (Fig. 6): under the overlap model, `M_ct = 258.33` (the
//! out-port of `P2`) yet the system's period is `291.67`. The example
//! verifies the gap three independent ways — Theorem 1's polynomial
//! algorithm, the full timed-Petri-net critical cycle, and discrete-event
//! simulation — then prints the per-resource idle fractions measured from
//! the simulated schedule.
//!
//! Run with: `cargo run --release -p repwf-bench --example no_critical_resource`

use repwf_core::cycle_time::cycle_times;
use repwf_core::fixtures::example_b;
use repwf_core::model::CommModel;
use repwf_core::period::{compute_period, Method};
use repwf_sim::gantt::build;
use repwf_sim::{simulate, SimOptions};

fn main() {
    let inst = example_b();
    let model = CommModel::Overlap;

    let poly = compute_period(&inst, model, Method::Polynomial).expect("polynomial");
    let tpn = compute_period(&inst, model, Method::FullTpn).expect("full TPN");
    let sim = simulate(&inst, model, &SimOptions { data_sets: 60_000, record_ops: false });
    let sim_est = sim.exact_period(1e-9).unwrap_or_else(|| sim.period_estimate());

    println!("Example B (S0 x3, S1 x4), overlap one-port\n");
    println!("M_ct (best possible)        : {:>9.4}", poly.mct);
    println!("period, Theorem 1           : {:>9.4}", poly.period);
    println!("period, full TPN (m = {:>2})   : {:>9.4}", tpn.num_paths, tpn.period);
    println!("period, simulation          : {:>9.4}", sim_est);
    assert!((poly.period - tpn.period).abs() < 1e-9);
    assert!((poly.period - sim_est).abs() < 1e-3 * poly.period);
    assert!(poly.period > poly.mct + 1.0, "the gap is real: no critical resource");
    println!(
        "\ngap: the system is {:.1}% slower than its busiest resource —",
        100.0 * (poly.period - poly.mct) / poly.mct
    );
    println!("round-robin interference prevents any resource from being saturated.\n");

    // Show it: idle fraction of every resource over three mid-stream
    // periods. (In the unbounded-buffer model the front-end CPUs may run
    // *ahead* of the stream — what "no critical resource" means formally is
    // that every resource's cycle-time is below the period, i.e. no
    // resource keeps up with zero slack at the data-set rate.)
    let sim = simulate(&inst, model, &SimOptions { data_sets: 1000, record_ops: true });
    let p_big = poly.period * tpn.num_paths as f64;
    let chart = build(&inst, model, &sim, 2.0 * p_big, 5.0 * p_big);
    println!("idle fractions over three mid-stream periods:");
    for &row in &chart.rows {
        println!("  {:>12}: {:>5.1}% idle", format!("{row:?}"), 100.0 * chart.idle_fraction(row, 2.0 * p_big));
    }

    // And the cycle-time table that *predicts* the busiest resource.
    println!("\nper-resource cycle times (the max is M_ct):");
    for ct in cycle_times(&inst) {
        println!(
            "  P{} (S{}): C_in {:>8.3}  C_comp {:>8.3}  C_out {:>8.3}  -> C_exec {:>8.3}",
            ct.proc,
            ct.stage,
            ct.c_in,
            ct.c_comp,
            ct.c_out,
            ct.exec(model)
        );
    }
}
