//! Closing the loop on the NP-hard mapping problem: use `repwf-map`'s
//! heuristics with the `repwf-core` period oracle to *find* a good mapping,
//! then audit it.
//!
//! The paper computes the throughput of a *given* mapping and cites the
//! NP-hardness of choosing one (Benoit & Robert 2008). This example builds
//! a skewed pipeline on a heterogeneous platform and compares
//!
//! * the naive one-to-one mapping,
//! * the greedy work-proportional constructor,
//! * multi-start local search,
//!
//! under the overlap one-port model.
//!
//! Run with: `cargo run --release -p repwf-bench --example mapping_search`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use repwf_core::model::{CommModel, Mapping, Pipeline, Platform};
use repwf_map::{evaluate, greedy, local_search, optimize, SearchOptions};

fn main() {
    let mut rng = StdRng::seed_from_u64(2009);
    // 5 stages, strongly skewed works; 14 processors with a 4x speed spread.
    let pipeline = Pipeline::new(
        vec![120.0, 900.0, 60.0, 400.0, 150.0],
        vec![30.0, 25.0, 25.0, 10.0],
    )
    .expect("valid pipeline");
    let mut platform = Platform::uniform(14, 1.0, 50.0);
    for u in 0..14 {
        platform.set_speed(u, 1.0 + 3.0 * rng.gen::<f64>());
    }

    let model = CommModel::Overlap;
    let naive = Mapping::one_to_one((0..5).collect()).expect("valid");
    let p_naive = evaluate(&pipeline, &platform, &naive, model).expect("oracle");
    println!("one-to-one on P0..P4        : period {p_naive:>9.3}");

    let g = greedy(&pipeline, &platform);
    let p_greedy = evaluate(&pipeline, &platform, &g, model).expect("oracle");
    println!("greedy constructor          : period {p_greedy:>9.3}  replicas {:?}", g.replica_counts());

    let opts = SearchOptions { model, restarts: 6, max_passes: 60, seed: 7 };
    let refined = local_search(&pipeline, &platform, g.clone(), &opts);
    println!(
        "greedy + local search       : period {:>9.3}  replicas {:?}  ({} evals)",
        refined.period,
        refined.mapping.replica_counts(),
        refined.evaluations
    );

    let best = optimize(&pipeline, &platform, &opts);
    println!(
        "multi-start optimization    : period {:>9.3}  replicas {:?}  ({} evals)",
        best.period,
        best.mapping.replica_counts(),
        best.evaluations
    );
    println!("\nbest mapping:");
    for (i, procs) in best.mapping.assignment().iter().enumerate() {
        let speeds: Vec<String> =
            procs.iter().map(|&u| format!("P{u}(Π={:.2})", platform.speed(u))).collect();
        println!("  S{i}: {}", speeds.join(", "));
    }
    let speedup = p_naive / best.period;
    println!("\nthroughput gain over one-to-one: {speedup:.2}x");
    assert!(best.period <= p_greedy + 1e-9, "search never loses to its seed");
}
