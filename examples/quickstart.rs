//! Quickstart: model a small replicated workflow, compute its throughput
//! under both communication models, and inspect the bottleneck.
//!
//! Run with: `cargo run --release -p repwf-bench --example quickstart`

use repwf_core::model::{CommModel, Instance, Mapping, Pipeline, Platform};
use repwf_core::period::{compute_period, Method};

fn main() {
    // A 3-stage pipeline (Fig. 1 of the paper, one stage shorter):
    // stage works in FLOP, inter-stage files in bytes.
    let pipeline = Pipeline::new(
        vec![800.0, 2400.0, 600.0], // w_0, w_1, w_2
        vec![100.0, 80.0],          // δ_0, δ_1
    )
    .expect("valid pipeline");

    // Six heterogeneous processors; logical all-to-all links.
    let mut platform = Platform::uniform(6, 1.0, 10.0);
    platform.set_speed(0, 8.0); // fast front-end
    platform.set_speed(1, 6.0);
    platform.set_speed(2, 6.0);
    platform.set_speed(3, 4.0);
    platform.set_speed(4, 9.0); // fast back-end
    platform.set_bandwidth(0, 1, 25.0); // a fat link from P0 to P1

    // Map the heavy middle stage onto three processors (replication!);
    // data sets will visit P1, P2, P3 in round-robin.
    let mapping = Mapping::new(vec![vec![0], vec![1, 2, 3], vec![4]]).expect("valid mapping");

    let inst = Instance::new(pipeline, platform, mapping).expect("consistent instance");

    for model in [CommModel::Overlap, CommModel::Strict] {
        let report = compute_period(&inst, model, Method::Auto).expect("analysis succeeds");
        println!("--- {model} ---");
        println!("  period      : {:.3} time units per data set", report.period);
        println!("  throughput  : {:.4} data sets / time unit", report.throughput());
        println!("  M_ct bound  : {:.3}", report.mct);
        println!(
            "  critical    : {} ({})",
            report.critical,
            if report.has_critical_resource(1e-9) {
                "a critical resource exists"
            } else {
                "NO critical resource: every resource idles each period"
            }
        );
        println!("  method      : {} over m = {} paths\n", report.method, report.num_paths);
    }
}
